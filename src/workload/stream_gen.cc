#include "workload/stream_gen.h"

#include "util/check.h"

namespace dyncq::workload {

StreamGenerator::StreamGenerator(std::shared_ptr<const Schema> schema,
                                 StreamOptions opts)
    : schema_(std::move(schema)), opts_(opts), rng_(opts.seed) {
  DYNCQ_CHECK(schema_ != nullptr);
  DYNCQ_CHECK(opts_.domain_size >= 1);
  if (opts_.zipf_s > 0.0) {
    zipf_ = std::make_unique<ZipfSampler>(opts_.domain_size, opts_.zipf_s);
  }
  live_.resize(schema_->NumRelations());
  live_index_.resize(schema_->NumRelations());
  if (opts_.pattern == TemporalPattern::kSlidingWindow) {
    DYNCQ_CHECK(opts_.window >= 1);
    fifo_.resize(schema_->NumRelations());
  }
  if (opts_.pattern == TemporalPattern::kFlashCrowd) {
    DYNCQ_CHECK(opts_.flash_period >= 1);
    DYNCQ_CHECK(opts_.flash_hot_values >= 1);
  }
  if (opts_.pattern == TemporalPattern::kDeleteStorm) {
    DYNCQ_CHECK(opts_.storm_period >= 1);
    DYNCQ_CHECK(opts_.storm_len <= opts_.storm_period);
  }
}

Value StreamGenerator::RandomValue() {
  if (in_flash_) return hot_values_[rng_.Below(hot_values_.size())];
  if (zipf_ != nullptr) return zipf_->Sample(rng_);
  return rng_.Range(1, opts_.domain_size);
}

Tuple StreamGenerator::RandomTuple(RelId rel) {
  Tuple t;
  for (std::size_t i = 0; i < schema_->arity(rel); ++i) {
    t.push_back(RandomValue());
  }
  return t;
}

UpdateCmd StreamGenerator::InsertFresh(RelId rel) {
  Tuple t = RandomTuple(rel);
  auto [slot, inserted] = live_index_[rel].Insert(t, live_[rel].size());
  if (inserted) {
    live_[rel].push_back(t);
    if (opts_.pattern == TemporalPattern::kSlidingWindow) {
      fifo_[rel].push_back(t);
    }
  }
  return UpdateCmd::Insert(rel, t);
}

UpdateCmd StreamGenerator::DeleteLiveAt(RelId rel, std::size_t pos) {
  Tuple t = live_[rel][pos];
  Tuple& last = live_[rel].back();
  if (pos + 1 != live_[rel].size()) {
    *live_index_[rel].Find(last) = pos;
    live_[rel][pos] = last;
  }
  live_[rel].pop_back();
  live_index_[rel].Erase(t);
  return UpdateCmd::Delete(rel, t);
}

void StreamGenerator::TickFlash() {
  const std::uint64_t phase = tick_ % opts_.flash_period;
  if (phase == 0) {
    // A fresh set of values goes viral. Drawn from the base
    // distribution (not yet hot) so Zipf skew compounds with the burst.
    in_flash_ = false;
    hot_values_.clear();
    for (std::size_t i = 0; i < opts_.flash_hot_values; ++i) {
      hot_values_.push_back(RandomValue());
    }
  }
  in_flash_ = phase < opts_.flash_len;
  ++tick_;
}

UpdateCmd StreamGenerator::Next(RelId rel) {
  if (opts_.pattern == TemporalPattern::kFlashCrowd) TickFlash();

  if (opts_.pattern == TemporalPattern::kDeleteStorm) {
    // Sawtooth: the cycle ends with a pure-delete storm, so a fresh
    // generator builds first. The build phase falls through to the
    // normal churn mix below.
    const std::uint64_t phase = tick_++ % opts_.storm_period;
    const bool storming =
        phase >= opts_.storm_period - opts_.storm_len;
    if (storming && !live_[rel].empty()) {
      return DeleteLiveAt(rel, rng_.Below(live_[rel].size()));
    }
  }

  if (opts_.pattern == TemporalPattern::kSlidingWindow) {
    // Expiry first: past the window, the oldest arrival leaves before
    // the next one lands, so the live set never exceeds `window`.
    if (live_[rel].size() >= opts_.window) {
      Tuple oldest = std::move(fifo_[rel].front());
      fifo_[rel].pop_front();
      std::size_t* pos = live_index_[rel].Find(oldest);
      DYNCQ_DCHECK(pos != nullptr);  // expiry is the only delete source
      return DeleteLiveAt(rel, *pos);
    }
    return InsertFresh(rel);
  }

  if (opts_.noop_ratio > 0.0 && rng_.Chance(opts_.noop_ratio)) {
    if (!live_[rel].empty() && rng_.Chance(0.5)) {
      // Re-insert a tuple that is already present.
      return UpdateCmd::Insert(rel,
                               live_[rel][rng_.Below(live_[rel].size())]);
    }
    // Delete a tuple that is (almost surely) absent.
    Tuple t = RandomTuple(rel);
    if (!live_index_[rel].Contains(t)) return UpdateCmd::Delete(rel, t);
  }
  bool do_insert =
      live_[rel].empty() || rng_.Chance(opts_.insert_ratio);
  if (do_insert) return InsertFresh(rel);
  // Delete a uniformly random live tuple (swap-remove for O(1)).
  return DeleteLiveAt(rel, rng_.Below(live_[rel].size()));
}

UpdateStream StreamGenerator::Take(std::size_t count) {
  UpdateStream out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Next(static_cast<RelId>(i % schema_->NumRelations())));
  }
  return out;
}

UpdateStream StreamGenerator::TakeFor(RelId rel, std::size_t count) {
  UpdateStream out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(Next(rel));
  return out;
}

}  // namespace dyncq::workload
