#include "workload/query_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "cq/analysis.h"
#include "util/check.h"

namespace dyncq::workload {

namespace {

/// Shared state while emitting one query's atoms into a schema/builder.
/// All relation bookkeeping lives in the SchemaPool so queries drawn
/// through one pool share (and grow) one schema; the single-query entry
/// points wrap a local pool.
struct Emitter {
  const QueryGenOptions& opts;
  Rng& rng;
  SchemaPool* pool;

  RelId RelationForArity(std::size_t arity) {
    if (pool->rels_by_arity.size() <= arity) {
      pool->rels_by_arity.resize(arity + 1);
    }
    auto& existing = pool->rels_by_arity[arity];
    if (!existing.empty() && rng.Chance(pool->reuse_prob)) {
      return existing[rng.Below(existing.size())];
    }
    auto added = pool->schema->AddRelation(
        "R" + std::to_string(pool->next_rel++), arity);
    DYNCQ_CHECK_MSG(added.ok(), added.error());
    existing.push_back(added.value());
    return added.value();
  }

  /// Builds an atom whose variable set is exactly `path_vars`: one
  /// occurrence of each path variable (shuffled), plus optional repeated
  /// variables and constants.
  void EmitAtom(QueryBuilder* b, const std::vector<VarId>& path_vars) {
    std::vector<Term> args;
    args.reserve(path_vars.size() + 2);
    for (VarId v : path_vars) args.push_back(Term::Var(v));
    // Fisher-Yates shuffle of the mandatory occurrences.
    for (std::size_t i = args.size(); i > 1; --i) {
      std::swap(args[i - 1], args[rng.Below(i)]);
    }
    while (rng.Chance(opts.repeat_arg_prob)) {
      Term t = Term::Var(path_vars[rng.Below(path_vars.size())]);
      args.insert(args.begin() +
                      static_cast<std::ptrdiff_t>(rng.Below(args.size() + 1)),
                  t);
    }
    while (rng.Chance(opts.const_arg_prob)) {
      Term t = Term::Const(1 + rng.Below(opts.max_constant));
      args.insert(args.begin() +
                      static_cast<std::ptrdiff_t>(rng.Below(args.size() + 1)),
                  t);
    }
    // Pick the relation before moving args out (argument evaluation
    // order would otherwise read size() from a moved-from vector).
    RelId rel = RelationForArity(args.size());
    b->AddAtom(rel, std::move(args));
  }
};

}  // namespace

Query RandomQHierarchicalQuery(const QueryGenOptions& opts, Rng& rng) {
  SchemaPool local(opts.reuse_rel_prob);
  return RandomQHierarchicalQuery(opts, rng, &local);
}

Query RandomQHierarchicalQuery(const QueryGenOptions& opts, Rng& rng,
                               SchemaPool* pool) {
  // Builder shares the pool's schema object; we fill the schema as we
  // go. The shared_ptr aliasing keeps it alive for the query.
  QueryBuilder b(pool->schema);
  b.SetName("G");
  Emitter em{opts, rng, pool};

  std::vector<VarId> head;
  int components =
      1 + static_cast<int>(rng.Below(
              static_cast<std::uint64_t>(opts.max_components)));
  int var_counter = 0;

  for (int c = 0; c < components; ++c) {
    // Random rooted tree on nv nodes: parent[i] uniform among 0..i-1.
    int nv = 1 + static_cast<int>(rng.Below(static_cast<std::uint64_t>(
                 opts.max_component_vars)));
    std::vector<int> parent(static_cast<std::size_t>(nv), -1);
    std::vector<std::vector<int>> children(static_cast<std::size_t>(nv));
    for (int i = 1; i < nv; ++i) {
      int p = static_cast<int>(rng.Below(static_cast<std::uint64_t>(i)));
      parent[static_cast<std::size_t>(i)] = p;
      children[static_cast<std::size_t>(p)].push_back(i);
    }

    // Free prefix: root free unless the component is Boolean; children of
    // free nodes are free with probability free_child_prob.
    std::vector<bool> is_free(static_cast<std::size_t>(nv), false);
    if (!rng.Chance(opts.boolean_prob)) {
      is_free[0] = true;
      for (int i = 1; i < nv; ++i) {
        int p = parent[static_cast<std::size_t>(i)];
        if (is_free[static_cast<std::size_t>(p)] &&
            rng.Chance(opts.free_child_prob)) {
          is_free[static_cast<std::size_t>(i)] = true;
        }
      }
    }

    // Declare the variables.
    std::vector<VarId> var_of_node(static_cast<std::size_t>(nv));
    for (int i = 0; i < nv; ++i) {
      var_of_node[static_cast<std::size_t>(i)] =
          b.Var("v" + std::to_string(var_counter++));
    }

    // Path variables per node (root first).
    std::vector<std::vector<VarId>> path(static_cast<std::size_t>(nv));
    for (int i = 0; i < nv; ++i) {
      int p = parent[static_cast<std::size_t>(i)];
      if (p >= 0) path[static_cast<std::size_t>(i)] =
          path[static_cast<std::size_t>(p)];
      path[static_cast<std::size_t>(i)].push_back(
          var_of_node[static_cast<std::size_t>(i)]);
    }

    // Atoms: every leaf must be represented; internal nodes (and the
    // root) get extra atoms with some probability.
    for (int i = 0; i < nv; ++i) {
      bool leaf = children[static_cast<std::size_t>(i)].empty();
      if (leaf || rng.Chance(opts.extra_atom_prob)) {
        em.EmitAtom(&b, path[static_cast<std::size_t>(i)]);
      }
    }

    for (int i = 0; i < nv; ++i) {
      if (is_free[static_cast<std::size_t>(i)]) {
        head.push_back(var_of_node[static_cast<std::size_t>(i)]);
      }
    }
  }

  // Shuffle the head order across components.
  for (std::size_t i = head.size(); i > 1; --i) {
    std::swap(head[i - 1], head[rng.Below(i)]);
  }
  b.SetHead(head);
  Result<Query> q = b.Build();
  DYNCQ_CHECK_MSG(q.ok(), "generator built an invalid query: " + q.error());
  DYNCQ_CHECK_MSG(IsQHierarchical(q.value()),
                  "generator violated Definition 3.1: " +
                      q->ToString());
  return q.value();
}

Query RandomCQ(const QueryGenOptions& opts, Rng& rng) {
  SchemaPool local(opts.reuse_rel_prob);
  return RandomCQ(opts, rng, &local);
}

Query RandomCQ(const QueryGenOptions& opts, Rng& rng, SchemaPool* pool) {
  // Draw raw atoms over abstract variable indices first; only variables
  // that actually occur get declared (the builder rejects unused ones).
  struct RawArg {
    bool is_const = false;
    int var = 0;
    Value constant = 0;
  };
  struct RawAtom {
    std::vector<RawArg> args;
  };

  const int nv = 2 + static_cast<int>(rng.Below(static_cast<std::uint64_t>(
                     opts.max_component_vars * opts.max_components)));
  const int natoms = 1 + static_cast<int>(rng.Below(4));

  std::vector<RawAtom> atoms(static_cast<std::size_t>(natoms));
  std::vector<bool> used(static_cast<std::size_t>(nv), false);
  for (RawAtom& atom : atoms) {
    std::size_t arity = 1 + rng.Below(3);
    atom.args.resize(arity);
    for (RawArg& arg : atom.args) {
      if (rng.Chance(opts.const_arg_prob)) {
        arg.is_const = true;
        arg.constant = 1 + rng.Below(opts.max_constant);
      } else {
        arg.var = static_cast<int>(rng.Below(static_cast<std::uint64_t>(nv)));
        used[static_cast<std::size_t>(arg.var)] = true;
      }
    }
    // Guarantee at least one variable per atom.
    if (std::all_of(atom.args.begin(), atom.args.end(),
                    [](const RawArg& a) { return a.is_const; })) {
      atom.args[0].is_const = false;
      atom.args[0].var =
          static_cast<int>(rng.Below(static_cast<std::uint64_t>(nv)));
      used[static_cast<std::size_t>(atom.args[0].var)] = true;
    }
  }

  QueryBuilder b(pool->schema);
  b.SetName("C");
  Emitter em{opts, rng, pool};

  std::vector<VarId> var_of(static_cast<std::size_t>(nv), kInvalidVar);
  for (int v = 0; v < nv; ++v) {
    if (used[static_cast<std::size_t>(v)]) {
      var_of[static_cast<std::size_t>(v)] = b.Var("v" + std::to_string(v));
    }
  }

  for (const RawAtom& atom : atoms) {
    std::vector<Term> args;
    args.reserve(atom.args.size());
    for (const RawArg& arg : atom.args) {
      args.push_back(arg.is_const
                         ? Term::Const(arg.constant)
                         : Term::Var(var_of[static_cast<std::size_t>(
                               arg.var)]));
    }
    RelId rel = em.RelationForArity(args.size());
    b.AddAtom(rel, std::move(args));
  }

  // Head: random subset of the used variables.
  std::vector<VarId> head;
  for (int v = 0; v < nv; ++v) {
    if (used[static_cast<std::size_t>(v)] && rng.Chance(0.4)) {
      head.push_back(var_of[static_cast<std::size_t>(v)]);
    }
  }
  b.SetHead(head);
  Result<Query> q = b.Build();
  DYNCQ_CHECK_MSG(q.ok(), "RandomCQ built an invalid query: " + q.error());
  return q.value();
}

Query AlphaRenameShuffle(const Query& q, Rng& rng) {
  const std::size_t n = q.NumVars();
  // Random declaration order: variable ids are assigned by first b.Var
  // call, so declaring along a random permutation renumbers everything.
  std::vector<VarId> decl(n);
  for (std::size_t i = 0; i < n; ++i) decl[i] = static_cast<VarId>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(decl[i - 1], decl[rng.Below(i)]);
  }
  QueryBuilder b(q.schema_ptr());
  b.SetName(q.name());
  std::vector<VarId> new_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    new_of[decl[i]] = b.Var("w" + std::to_string(i));
  }

  // Atoms in a random order.
  std::vector<std::size_t> order(q.NumAtoms());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }
  for (std::size_t idx : order) {
    const Atom& a = q.atoms()[idx];
    std::vector<Term> args;
    args.reserve(a.args.size());
    for (const Term& t : a.args) {
      args.push_back(t.IsVar() ? Term::Var(new_of[t.var]) : t);
    }
    b.AddAtom(a.rel, std::move(args));
  }

  // The head keeps its output order — only the variable identities
  // change (k-ary query equality fixes the head pointwise).
  std::vector<VarId> head;
  head.reserve(q.head().size());
  for (VarId v : q.head()) head.push_back(new_of[v]);
  b.SetHead(head);
  Result<Query> out = b.Build();
  DYNCQ_CHECK_MSG(out.ok(),
                  "AlphaRenameShuffle built an invalid query: " + out.error());
  return out.value();
}

}  // namespace dyncq::workload
