// Synthetic update-stream generation for tests and benchmarks.
#ifndef DYNCQ_WORKLOAD_STREAM_GEN_H_
#define DYNCQ_WORKLOAD_STREAM_GEN_H_

#include <memory>
#include <vector>

#include "cq/schema.h"
#include "storage/update.h"
#include "util/hash.h"
#include "util/open_hash_map.h"
#include "util/rng.h"

namespace dyncq::workload {

struct StreamOptions {
  std::uint64_t seed = 42;
  /// Values are drawn from [1, domain_size].
  std::size_t domain_size = 1000;
  /// Probability that a command is an insert (deletes target live tuples).
  double insert_ratio = 1.0;
  /// Zipf skew (0 = uniform over the domain).
  double zipf_s = 0.0;
  /// Probability that a command is a deliberate no-op (re-insert of a
  /// live tuple or delete of an absent one) — models at-least-once
  /// delivery and exercises the engines' set-semantics dedup paths.
  double noop_ratio = 0.0;
};

/// Stateful generator producing a realistic insert/delete mix: deletes
/// pick uniformly among currently live tuples, so they always hit.
class StreamGenerator {
 public:
  StreamGenerator(std::shared_ptr<const Schema> schema, StreamOptions opts);

  /// Next command for relation `rel`.
  UpdateCmd Next(RelId rel);

  /// `count` commands spread round-robin over all relations.
  UpdateStream Take(std::size_t count);

  /// `count` commands for a single relation.
  UpdateStream TakeFor(RelId rel, std::size_t count);

  std::size_t LiveTuples(RelId rel) const {
    return live_[rel].size();
  }

 private:
  Tuple RandomTuple(RelId rel);
  Value RandomValue();

  std::shared_ptr<const Schema> schema_;
  StreamOptions opts_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  // Live tuples per relation: vector for O(1) sampling + index map for
  // O(1) removal (swap-with-last).
  std::vector<std::vector<Tuple>> live_;
  std::vector<OpenHashMap<Tuple, std::size_t, TupleHash>> live_index_;
};

}  // namespace dyncq::workload

#endif  // DYNCQ_WORKLOAD_STREAM_GEN_H_
