// Synthetic update-stream generation for tests and benchmarks.
#ifndef DYNCQ_WORKLOAD_STREAM_GEN_H_
#define DYNCQ_WORKLOAD_STREAM_GEN_H_

#include <deque>
#include <memory>
#include <vector>

#include "cq/schema.h"
#include "storage/update.h"
#include "util/hash.h"
#include "util/open_hash_map.h"
#include "util/rng.h"

namespace dyncq::workload {

/// Temporal shape of the stream (ROADMAP "scenario diversity").
enum class TemporalPattern {
  /// Stationary insert/delete mix; deletes pick uniformly among live
  /// tuples (the original behavior).
  kChurn,
  /// Sliding window: tuples are inserted "now" and deleted once the
  /// relation's live set exceeds `window` — every delete removes the
  /// OLDEST live insert, so the database is always the last W arrivals.
  /// Models retention windows; `insert_ratio` is ignored (expiry drives
  /// the deletes).
  kSlidingWindow,
  /// Flash crowd: every `flash_period` commands a fresh set of
  /// `flash_hot_values` values goes viral and the next `flash_len`
  /// commands draw their tuples from it exclusively; between bursts the
  /// stream is kChurn. Models hot keys defeating uniform sharding.
  kFlashCrowd,
  /// Delete storm: a sawtooth of build and drain. Each `storm_period`
  /// commands end with `storm_len` commands that are pure deletes of
  /// uniformly random live tuples (stopping early only if the relation
  /// empties); the build phase before them is the kChurn mix. Models
  /// mass expiry/backfill-revert traffic — the adversarial case for
  /// pool block reclamation, since whole item blocks are repeatedly
  /// drained and must be returned rather than parked forever.
  kDeleteStorm,
};

struct StreamOptions {
  std::uint64_t seed = 42;
  /// Values are drawn from [1, domain_size].
  std::size_t domain_size = 1000;
  /// Probability that a command is an insert (deletes target live tuples).
  double insert_ratio = 1.0;
  /// Zipf skew (0 = uniform over the domain).
  double zipf_s = 0.0;
  /// Probability that a command is a deliberate no-op (re-insert of a
  /// live tuple or delete of an absent one) — models at-least-once
  /// delivery and exercises the engines' set-semantics dedup paths.
  double noop_ratio = 0.0;

  TemporalPattern pattern = TemporalPattern::kChurn;
  /// kSlidingWindow: live tuples per relation before the oldest expires.
  std::size_t window = 1024;
  /// kFlashCrowd: commands between burst starts / burst length /
  /// size of the viral value set.
  std::size_t flash_period = 4096;
  std::size_t flash_len = 512;
  std::size_t flash_hot_values = 8;

  /// kDeleteStorm: commands per build+drain cycle, and how many at the
  /// end of each cycle are the pure-delete storm (storm_len <=
  /// storm_period; the remainder is the build phase).
  std::size_t storm_period = 8192;
  std::size_t storm_len = 4096;
};

/// Stateful generator producing a realistic insert/delete mix: deletes
/// pick uniformly among currently live tuples, so they always hit.
class StreamGenerator {
 public:
  StreamGenerator(std::shared_ptr<const Schema> schema, StreamOptions opts);

  /// Next command for relation `rel`.
  UpdateCmd Next(RelId rel);

  /// `count` commands spread round-robin over all relations.
  UpdateStream Take(std::size_t count);

  /// `count` commands for a single relation.
  UpdateStream TakeFor(RelId rel, std::size_t count);

  std::size_t LiveTuples(RelId rel) const {
    return live_[rel].size();
  }

 private:
  Tuple RandomTuple(RelId rel);
  Value RandomValue();
  UpdateCmd InsertFresh(RelId rel);
  UpdateCmd DeleteLiveAt(RelId rel, std::size_t pos);
  void TickFlash();

  std::shared_ptr<const Schema> schema_;
  StreamOptions opts_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  // Live tuples per relation: vector for O(1) sampling + index map for
  // O(1) removal (swap-with-last).
  std::vector<std::vector<Tuple>> live_;
  std::vector<OpenHashMap<Tuple, std::size_t, TupleHash>> live_index_;
  // kSlidingWindow: per-relation FIFO of live tuples in insert order.
  // Only effective inserts are pushed and only expiry deletes, so every
  // live tuple appears exactly once and the front is always live.
  std::vector<std::deque<Tuple>> fifo_;
  // kFlashCrowd state.
  std::uint64_t tick_ = 0;
  bool in_flash_ = false;
  std::vector<Value> hot_values_;
};

}  // namespace dyncq::workload

#endif  // DYNCQ_WORKLOAD_STREAM_GEN_H_
