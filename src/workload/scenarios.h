// Named application scenarios used by the examples and benchmarks. Each
// bundles a schema, a set of queries spanning the paper's tractability
// classes, and an initial update stream.
#ifndef DYNCQ_WORKLOAD_SCENARIOS_H_
#define DYNCQ_WORKLOAD_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "cq/query.h"
#include "storage/update.h"

namespace dyncq::workload {

struct Scenario {
  std::string name;
  std::string description;
  std::shared_ptr<const Schema> schema;
  std::vector<Query> queries;
  UpdateStream initial;
};

/// Social feed: Follows(follower, author), Posts(author, post).
/// Queries: the q-hierarchical feed join, a q-hierarchical quantified
/// notification query, and the non-q-hierarchical "who sees which post"
/// projection (the matrix-multiplication-shaped hard query).
Scenario SocialFeedScenario(std::size_t users, std::size_t posts,
                            std::size_t follow_edges, std::uint64_t seed);

/// Telemetry: Critical(sensor), Reading(sensor, value), Threshold(value).
/// Boolean alert query shaped exactly like the paper's ϕ'_{S-E-T} (hard),
/// plus tractable per-sensor variants.
Scenario TelemetryScenario(std::size_t sensors, std::size_t values,
                           std::size_t readings, std::uint64_t seed);

/// Orders: Customer(c), Orders(c, o), Items(o, i): a non-hierarchical
/// chain plus tractable subqueries.
Scenario OrdersScenario(std::size_t customers, std::size_t orders,
                        std::size_t items, std::uint64_t seed);

}  // namespace dyncq::workload

#endif  // DYNCQ_WORKLOAD_SCENARIOS_H_
