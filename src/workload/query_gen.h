// Random conjunctive-query generation.
//
// RandomQHierarchicalQuery builds queries that are q-hierarchical *by
// construction* (sampling random q-trees and emitting atoms along root
// paths — the converse direction of Lemma 4.2), optionally with repeated
// variables, constants, self-joins, and multiple connected components.
// RandomCQ samples unconstrained CQs. Both are used by the property
// tests to cross-validate the analyses, the q-tree construction, and the
// dynamic engine against the oracle on thousands of query shapes.
#ifndef DYNCQ_WORKLOAD_QUERY_GEN_H_
#define DYNCQ_WORKLOAD_QUERY_GEN_H_

#include "cq/query.h"
#include "util/rng.h"

namespace dyncq::workload {

struct QueryGenOptions {
  int max_component_vars = 5;  // variables per connected component
  int max_components = 2;
  double boolean_prob = 0.2;     // chance a component exports no head vars
  double free_child_prob = 0.6;  // chance a child of a free node is free
  double extra_atom_prob = 0.35;  // chance of an atom at a non-leaf node
  double repeat_arg_prob = 0.15;  // chance of an extra repeated-var arg
  double const_arg_prob = 0.1;    // chance of an extra constant arg
  double reuse_rel_prob = 0.2;    // chance of a self-join (name reuse)
  std::size_t max_constant = 6;
};

/// A random q-hierarchical query (checked against Definition 3.1 before
/// returning).
Query RandomQHierarchicalQuery(const QueryGenOptions& opts, Rng& rng);

/// A random unconstrained CQ (any hierarchy class).
Query RandomCQ(const QueryGenOptions& opts, Rng& rng);

}  // namespace dyncq::workload

#endif  // DYNCQ_WORKLOAD_QUERY_GEN_H_
