// Random conjunctive-query generation.
//
// RandomQHierarchicalQuery builds queries that are q-hierarchical *by
// construction* (sampling random q-trees and emitting atoms along root
// paths — the converse direction of Lemma 4.2), optionally with repeated
// variables, constants, self-joins, and multiple connected components.
// RandomCQ samples unconstrained CQs. Both are used by the property
// tests to cross-validate the analyses, the q-tree construction, and the
// dynamic engine against the oracle on thousands of query shapes.
#ifndef DYNCQ_WORKLOAD_QUERY_GEN_H_
#define DYNCQ_WORKLOAD_QUERY_GEN_H_

#include <memory>
#include <vector>

#include "cq/query.h"
#include "util/rng.h"

namespace dyncq::workload {

struct QueryGenOptions {
  int max_component_vars = 5;  // variables per connected component
  int max_components = 2;
  double boolean_prob = 0.2;     // chance a component exports no head vars
  double free_child_prob = 0.6;  // chance a child of a free node is free
  double extra_atom_prob = 0.35;  // chance of an atom at a non-leaf node
  double repeat_arg_prob = 0.15;  // chance of an extra repeated-var arg
  double const_arg_prob = 0.1;    // chance of an extra constant arg
  double reuse_rel_prob = 0.2;    // chance of a self-join (name reuse)
  std::size_t max_constant = 6;
};

/// A growable schema shared by many generated queries — the multi-query
/// workload shape (serve/query_registry.h): every query drawn through
/// one pool aliases the same Schema object, so they can all be
/// registered against one shared Database. `reuse_prob` governs how
/// often a new atom reuses an existing relation of its arity instead of
/// declaring a fresh one — low values spread queries across many
/// relations (small per-delta fanout), high values pile them onto few
/// (hot relations). Freeze the pool (stop generating) before building a
/// Database over its schema.
struct SchemaPool {
  explicit SchemaPool(double reuse_prob = 0.5)
      : schema(std::make_shared<Schema>()), reuse_prob(reuse_prob) {}

  std::shared_ptr<Schema> schema;
  double reuse_prob;
  std::vector<std::vector<RelId>> rels_by_arity;
  int next_rel = 0;
};

/// A random q-hierarchical query (checked against Definition 3.1 before
/// returning).
Query RandomQHierarchicalQuery(const QueryGenOptions& opts, Rng& rng);

/// Same, drawing relations from (and growing) a shared schema pool.
Query RandomQHierarchicalQuery(const QueryGenOptions& opts, Rng& rng,
                               SchemaPool* pool);

/// A random unconstrained CQ (any hierarchy class).
Query RandomCQ(const QueryGenOptions& opts, Rng& rng);

/// Same, over a shared schema pool.
Query RandomCQ(const QueryGenOptions& opts, Rng& rng, SchemaPool* pool);

/// A structurally identical variant of `q`: existential (and head)
/// variables renamed along a random permutation with fresh names, atoms
/// emitted in a random order, head semantics (and output order)
/// unchanged, same schema object. Canonicalization (cq/canonical.h)
/// must map `q` and every variant to the same key — the property the
/// registry's dedup tests pivot on.
Query AlphaRenameShuffle(const Query& q, Rng& rng);

}  // namespace dyncq::workload

#endif  // DYNCQ_WORKLOAD_QUERY_GEN_H_
