#include "workload/matrix_workload.h"

#include "util/check.h"

namespace dyncq::workload {

std::shared_ptr<const Schema> MakeSETSchema() {
  auto schema = std::make_shared<Schema>();
  DYNCQ_CHECK(schema->AddRelation("S", 1).ok());
  DYNCQ_CHECK(schema->AddRelation("E", 2).ok());
  DYNCQ_CHECK(schema->AddRelation("T", 1).ok());
  return schema;
}

Value LeftValue(std::size_t i) { return 2 * (i + 1); }
Value RightValue(std::size_t j) { return 2 * (j + 1) + 1; }

UpdateStream EncodeMatrix(RelId e_rel, const omv::BitMatrix& m) {
  UpdateStream out;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m.Get(i, j)) {
        out.push_back(
            UpdateCmd::Insert(e_rel, Tuple{LeftValue(i), RightValue(j)}));
      }
    }
  }
  return out;
}

UpdateStream DiffSetStream(RelId rel, bool left_side,
                           const omv::BitVector& prev,
                           const omv::BitVector& next) {
  UpdateStream out;
  for (std::size_t b = 0; b < next.size(); ++b) {
    bool was = b < prev.size() && prev.Get(b);
    bool now = next.Get(b);
    if (was == now) continue;
    Tuple t{left_side ? LeftValue(b) : RightValue(b)};
    out.push_back(now ? UpdateCmd::Insert(rel, t)
                      : UpdateCmd::Delete(rel, t));
  }
  return out;
}

}  // namespace dyncq::workload
