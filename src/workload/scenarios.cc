#include "workload/scenarios.h"

#include "cq/parser.h"
#include "util/check.h"
#include "util/rng.h"

namespace dyncq::workload {

namespace {

Query MustParse(const std::string& text,
                std::shared_ptr<const Schema> schema) {
  auto q = ParseQuery(text, std::move(schema));
  DYNCQ_CHECK_MSG(q.ok(), q.error());
  return q.value();
}

}  // namespace

Scenario SocialFeedScenario(std::size_t users, std::size_t posts,
                            std::size_t follow_edges, std::uint64_t seed) {
  Scenario s;
  s.name = "social-feed";
  s.description =
      "Follows(follower, author) joined with Posts(author, post)";
  auto schema = std::make_shared<Schema>();
  DYNCQ_CHECK(schema->AddRelation("Follows", 2).ok());
  DYNCQ_CHECK(schema->AddRelation("Posts", 2).ok());
  s.schema = schema;

  // q-hierarchical: author is the root, follower and post are children.
  s.queries.push_back(MustParse(
      "Feed(follower, author, post) :- Follows(follower, author), "
      "Posts(author, post).",
      schema));
  // q-hierarchical with quantifiers: authors that have followers & posts.
  s.queries.push_back(MustParse(
      "ActiveAuthors(author) :- Follows(follower, author), "
      "Posts(author, post).",
      schema));
  // NOT q-hierarchical (condition (ii)): projecting away the author.
  s.queries.push_back(MustParse(
      "Visible(follower, post) :- Follows(follower, author), "
      "Posts(author, post).",
      schema));

  Rng rng(seed);
  // Post values are offset so user and post ids never collide.
  auto user = [&](std::size_t i) { return static_cast<Value>(i + 1); };
  auto post = [&](std::size_t i) {
    return static_cast<Value>(users + i + 1);
  };
  for (std::size_t e = 0; e < follow_edges; ++e) {
    s.initial.push_back(UpdateCmd::Insert(
        0, Tuple{user(rng.Below(users)), user(rng.Below(users))}));
  }
  for (std::size_t p = 0; p < posts; ++p) {
    s.initial.push_back(
        UpdateCmd::Insert(1, Tuple{user(rng.Below(users)), post(p)}));
  }
  return s;
}

Scenario TelemetryScenario(std::size_t sensors, std::size_t values,
                           std::size_t readings, std::uint64_t seed) {
  Scenario s;
  s.name = "telemetry";
  s.description =
      "Critical sensors, readings, and threshold values (alerting)";
  auto schema = std::make_shared<Schema>();
  DYNCQ_CHECK(schema->AddRelation("Critical", 1).ok());
  DYNCQ_CHECK(schema->AddRelation("Reading", 2).ok());
  DYNCQ_CHECK(schema->AddRelation("Threshold", 1).ok());
  s.schema = schema;

  // The paper's ϕ'_{S-E-T}: Boolean, hierarchical-violating, OMv-hard.
  s.queries.push_back(MustParse(
      "Alert() :- Critical(sensor), Reading(sensor, value), "
      "Threshold(value).",
      schema));
  // q-hierarchical: which critical sensors currently report anything.
  s.queries.push_back(MustParse(
      "LiveCritical(sensor) :- Critical(sensor), Reading(sensor, value).",
      schema));
  // ϕ_{E-T}-shaped (condition (ii) violation): sensors with an
  // over-threshold reading, threshold value projected away.
  s.queries.push_back(MustParse(
      "Offending(sensor) :- Reading(sensor, value), Threshold(value).",
      schema));

  Rng rng(seed);
  auto sensor = [&](std::size_t i) { return static_cast<Value>(i + 1); };
  auto value = [&](std::size_t i) {
    return static_cast<Value>(sensors + i + 1);
  };
  for (std::size_t i = 0; i < sensors; i += 4) {
    s.initial.push_back(UpdateCmd::Insert(0, Tuple{sensor(i)}));
  }
  for (std::size_t i = 0; i < readings; ++i) {
    s.initial.push_back(UpdateCmd::Insert(
        1, Tuple{sensor(rng.Below(sensors)), value(rng.Below(values))}));
  }
  for (std::size_t i = 0; i < values; i += 8) {
    s.initial.push_back(UpdateCmd::Insert(2, Tuple{value(i)}));
  }
  return s;
}

Scenario OrdersScenario(std::size_t customers, std::size_t orders,
                        std::size_t items, std::uint64_t seed) {
  Scenario s;
  s.name = "orders";
  s.description = "Customer -> Orders -> Items chain";
  auto schema = std::make_shared<Schema>();
  DYNCQ_CHECK(schema->AddRelation("Customer", 1).ok());
  DYNCQ_CHECK(schema->AddRelation("Orders", 2).ok());
  DYNCQ_CHECK(schema->AddRelation("Items", 2).ok());
  s.schema = schema;

  // Non-hierarchical chain (condition (i) fails on o vs c/i).
  s.queries.push_back(MustParse(
      "Chain(c, o, i) :- Customer(c), Orders(c, o), Items(o, i).", schema));
  // q-hierarchical: orders of known customers with some item, item
  // projected away (o is the root; c free child, i quantified child).
  s.queries.push_back(MustParse(
      "NonEmptyOrders(c, o) :- Orders(c, o), Items(o, i).", schema));
  // q-hierarchical Boolean: is there any completed order at all?
  s.queries.push_back(MustParse(
      "AnyOrder() :- Orders(c, o), Items(o, i).", schema));

  Rng rng(seed);
  auto cust = [&](std::size_t i) { return static_cast<Value>(i + 1); };
  auto order = [&](std::size_t i) {
    return static_cast<Value>(customers + i + 1);
  };
  auto item = [&](std::size_t i) {
    return static_cast<Value>(customers + orders + i + 1);
  };
  for (std::size_t i = 0; i < customers; ++i) {
    s.initial.push_back(UpdateCmd::Insert(0, Tuple{cust(i)}));
  }
  for (std::size_t i = 0; i < orders; ++i) {
    s.initial.push_back(UpdateCmd::Insert(
        1, Tuple{cust(rng.Below(customers)), order(i)}));
  }
  for (std::size_t i = 0; i < items; ++i) {
    s.initial.push_back(UpdateCmd::Insert(
        2, Tuple{order(rng.Below(orders)), item(rng.Below(items))}));
  }
  return s;
}

}  // namespace dyncq::workload
