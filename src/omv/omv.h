// The online matrix-vector multiplication problems (paper §5.1).
//
// OMv: given an n×n Boolean matrix M (preprocessing allowed), then n
// vectors arriving one at a time, output M v^t before seeing v^{t+1}.
// OuMv: vector pairs (u^t, v^t) arrive; output (u^t)^T M v^t each round.
// The OMv conjecture states no O(n^{3-ε}) total-time algorithm exists;
// OuMv is OMv-hard (Theorem 5.1 / [HKNS15] Thm 2.4).
#ifndef DYNCQ_OMV_OMV_H_
#define DYNCQ_OMV_OMV_H_

#include <vector>

#include "omv/bitmatrix.h"

namespace dyncq::omv {

struct OMvInstance {
  BitMatrix m;
  std::vector<BitVector> vectors;  // arrive online

  static OMvInstance Random(std::size_t n, double density,
                            std::uint64_t seed);
};

struct OuMvInstance {
  BitMatrix m;
  std::vector<std::pair<BitVector, BitVector>> pairs;  // arrive online

  static OuMvInstance Random(std::size_t n, double density,
                             std::uint64_t seed);
};

/// O(n^3) bit-by-bit solver (reference baseline).
std::vector<BitVector> SolveOMvNaive(const OMvInstance& inst);

/// O(n^3 / w) word-parallel solver — the practical upper bound.
std::vector<BitVector> SolveOMvWordParallel(const OMvInstance& inst);

std::vector<bool> SolveOuMvNaive(const OuMvInstance& inst);
std::vector<bool> SolveOuMvWordParallel(const OuMvInstance& inst);

}  // namespace dyncq::omv

#endif  // DYNCQ_OMV_OMV_H_
