// Bit-packed Boolean vectors and matrices over the Boolean semiring
// (multiplication = AND, addition = OR), as used by the OMv / OuMv / OV
// problems (paper §5.1–5.2).
#ifndef DYNCQ_OMV_BITMATRIX_H_
#define DYNCQ_OMV_BITMATRIX_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dyncq::omv {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  std::size_t size() const { return n_; }

  bool Get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(std::size_t i, bool v) {
    if (v) {
      words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    } else {
      words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }
  }

  /// Boolean dot product: true iff some position is 1 in both vectors.
  bool Dot(const BitVector& o) const;

  /// Number of set bits.
  std::size_t PopCount() const;

  const std::vector<std::uint64_t>& words() const { return words_; }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.n_ == b.n_ && a.words_ == b.words_;
  }

  static BitVector Random(std::size_t n, double density, Rng& rng);

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), row_words_((cols + 63) / 64),
        words_(rows * row_words_, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool Get(std::size_t i, std::size_t j) const {
    return (words_[i * row_words_ + (j >> 6)] >> (j & 63)) & 1;
  }

  void Set(std::size_t i, std::size_t j, bool v) {
    std::uint64_t& w = words_[i * row_words_ + (j >> 6)];
    if (v) {
      w |= (std::uint64_t{1} << (j & 63));
    } else {
      w &= ~(std::uint64_t{1} << (j & 63));
    }
  }

  /// Word-parallel Boolean matrix-vector product (O(n^2 / w) per call).
  BitVector Multiply(const BitVector& v) const;

  /// Bit-by-bit product, deliberately O(n^2) with no word parallelism —
  /// the "naive" reference point in the benchmarks.
  BitVector MultiplyNaive(const BitVector& v) const;

  /// u^T M v over the Boolean semiring.
  bool BilinearForm(const BitVector& u, const BitVector& v) const;

  static BitMatrix Random(std::size_t rows, std::size_t cols,
                          double density, Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_words_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dyncq::omv

#endif  // DYNCQ_OMV_BITMATRIX_H_
