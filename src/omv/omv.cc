#include "omv/omv.h"

namespace dyncq::omv {

OMvInstance OMvInstance::Random(std::size_t n, double density,
                                std::uint64_t seed) {
  Rng rng(seed);
  OMvInstance inst;
  inst.m = BitMatrix::Random(n, n, density, rng);
  inst.vectors.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    inst.vectors.push_back(BitVector::Random(n, density, rng));
  }
  return inst;
}

OuMvInstance OuMvInstance::Random(std::size_t n, double density,
                                  std::uint64_t seed) {
  Rng rng(seed);
  OuMvInstance inst;
  inst.m = BitMatrix::Random(n, n, density, rng);
  inst.pairs.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    inst.pairs.emplace_back(BitVector::Random(n, density, rng),
                            BitVector::Random(n, density, rng));
  }
  return inst;
}

std::vector<BitVector> SolveOMvNaive(const OMvInstance& inst) {
  std::vector<BitVector> out;
  out.reserve(inst.vectors.size());
  for (const BitVector& v : inst.vectors) {
    out.push_back(inst.m.MultiplyNaive(v));
  }
  return out;
}

std::vector<BitVector> SolveOMvWordParallel(const OMvInstance& inst) {
  std::vector<BitVector> out;
  out.reserve(inst.vectors.size());
  for (const BitVector& v : inst.vectors) {
    out.push_back(inst.m.Multiply(v));
  }
  return out;
}

std::vector<bool> SolveOuMvNaive(const OuMvInstance& inst) {
  std::vector<bool> out;
  out.reserve(inst.pairs.size());
  for (const auto& [u, v] : inst.pairs) {
    bool r = false;
    for (std::size_t i = 0; i < u.size() && !r; ++i) {
      if (!u.Get(i)) continue;
      for (std::size_t j = 0; j < v.size() && !r; ++j) {
        r = inst.m.Get(i, j) && v.Get(j);
      }
    }
    out.push_back(r);
  }
  return out;
}

std::vector<bool> SolveOuMvWordParallel(const OuMvInstance& inst) {
  std::vector<bool> out;
  out.reserve(inst.pairs.size());
  for (const auto& [u, v] : inst.pairs) {
    out.push_back(inst.m.BilinearForm(u, v));
  }
  return out;
}

}  // namespace dyncq::omv
