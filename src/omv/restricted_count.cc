#include "omv/restricted_count.h"

#include <bit>

#include "cq/homomorphism.h"
#include "util/check.h"
#include "util/u128.h"

namespace dyncq::omv {

RestrictedCountMaintainer::RestrictedCountMaintainer(
    const Query& q, ClassFn class_of, const EngineFactory& factory)
    : q_(q),
      class_of_(std::move(class_of)),
      k_(static_cast<int>(q.Arity())),
      base_db_(q.schema()) {
  DYNCQ_CHECK_MSG(k_ >= 1 && k_ <= 8,
                  "RestrictedCountMaintainer requires arity in [1, 8]");
  pi_size_ = EndomorphismPermutations(q_).size();
  DYNCQ_CHECK(pi_size_ >= 1);  // identity is always an endomorphism
  const std::size_t subsets = std::size_t{1} << k_;
  engines_.reserve(subsets * static_cast<std::size_t>(k_ + 1));
  for (std::size_t i = 0; i < subsets; ++i) {
    for (int l = 0; l <= k_; ++l) {
      engines_.push_back(factory(q_));
    }
  }
}

bool RestrictedCountMaintainer::Apply(const UpdateCmd& cmd) {
  if (!base_db_.Apply(cmd)) return false;
  ForwardDelta(cmd);
  return true;
}

void RestrictedCountMaintainer::ForwardDelta(const UpdateCmd& cmd) {
  const std::size_t r = cmd.tuple.size();
  // Class of each tuple position (kNoClass if unclassified).
  std::vector<int> pos_class(r);
  for (std::size_t p = 0; p < r; ++p) pos_class[p] = class_of_(cmd.tuple[p]);

  const std::size_t subsets = std::size_t{1} << k_;
  for (std::size_t I = 0; I < subsets; ++I) {
    // Positions whose element is replicated under this I.
    std::vector<std::size_t> repl;
    for (std::size_t p = 0; p < r; ++p) {
      if (pos_class[p] != kNoClass &&
          ((I >> pos_class[p]) & 1) != 0) {
        repl.push_back(p);
      }
    }
    for (int l = 0; l <= k_; ++l) {
      DynamicQueryEngine& engine =
          *engines_[I * static_cast<std::size_t>(k_ + 1) +
                    static_cast<std::size_t>(l)];
      if (!repl.empty() && l == 0) continue;  // tuple vanishes entirely
      // Enumerate copy choices s ∈ [l]^{repl} (positions outside repl use
      // copy 0).
      Tuple derived;
      derived.resize(r);
      for (std::size_t p = 0; p < r; ++p) {
        derived[p] = Encode(cmd.tuple[p], 0);
      }
      std::vector<int> choice(repl.size(), 0);
      while (true) {
        for (std::size_t c = 0; c < repl.size(); ++c) {
          derived[repl[c]] = Encode(cmd.tuple[repl[c]],
                                    static_cast<std::size_t>(choice[c]));
        }
        engine.Apply(UpdateCmd{cmd.kind, cmd.rel, derived});
        // Odometer over choices.
        std::size_t c = 0;
        for (; c < choice.size(); ++c) {
          if (++choice[c] < l) break;
          choice[c] = 0;
        }
        if (c == choice.size()) break;
        if (choice.empty()) break;
      }
    }
  }
}

Int128 RestrictedCountMaintainer::RestrictedCount() const {
  const std::size_t subsets = std::size_t{1} << k_;
  auto vandermonde = VandermondeMatrix(k_);

  // x_S[k]: number of result tuples all of whose positions carry elements
  // of classes in S.
  std::vector<Int128> full_count(subsets, 0);
  for (std::size_t S = 0; S < subsets; ++S) {
    std::vector<Int128> b;
    b.reserve(static_cast<std::size_t>(k_ + 1));
    for (int l = 0; l <= k_; ++l) {
      Weight c = engines_[S * static_cast<std::size_t>(k_ + 1) +
                          static_cast<std::size_t>(l)]
                     ->Count();
      DYNCQ_CHECK_MSG(c <= static_cast<Weight>(~static_cast<Weight>(0) >> 2),
                      "copy count overflow");
      b.push_back(static_cast<Int128>(c));
    }
    auto x = SolveIntegerSystem(vandermonde, b);
    DYNCQ_CHECK_MSG(x.has_value(),
                    "Vandermonde recovery failed (non-integral counts)");
    full_count[S] = (*x)[static_cast<std::size_t>(k_)];
  }

  // Eq. (8): |R(D)| = Σ_{I ⊆ [k]} (-1)^{|I|} |R_{[k]\I, k}|.
  Int128 r = 0;
  for (std::size_t S = 0; S < subsets; ++S) {
    int complement_size = k_ - std::popcount(S);
    r += ((complement_size % 2 == 0) ? 1 : -1) * full_count[S];
  }

  // Eq. (5): |ϕ(D) ∩ (X_1 × ... × X_k)| = |R(D)| / |Π|.
  DYNCQ_CHECK_MSG(r % static_cast<Int128>(pi_size_) == 0,
                  "restricted count not divisible by |Pi|");
  Int128 result = r / static_cast<Int128>(pi_size_);
  DYNCQ_CHECK_MSG(result >= 0, "negative restricted count");
  return result;
}

}  // namespace dyncq::omv
