// The paper's lower-bound reductions (§5.3–§5.4), implemented as runnable
// algorithms: they solve OuMv / OMv / OV instances by driving any dynamic
// query engine through the update streams the proofs construct.
//
// Running them against the baselines demonstrates (a) that the reductions
// are correct (outputs match direct matrix arithmetic) and (b) why
// sublinear update/answer time for non-q-hierarchical queries would break
// the OMv conjecture: total reduction time is (#updates)·tu + (#rounds)·ta.
#ifndef DYNCQ_OMV_REDUCTIONS_H_
#define DYNCQ_OMV_REDUCTIONS_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/engine_iface.h"
#include "cq/analysis.h"
#include "cq/query.h"
#include "omv/omv.h"
#include "omv/ov.h"
#include "util/result.h"

namespace dyncq::omv {

/// Builds a dynamic engine for a query (the reductions are engine-generic).
using EngineFactory =
    std::function<std::unique_ptr<DynamicQueryEngine>(const Query&)>;

struct ReductionStats {
  std::size_t updates = 0;       // update commands issued
  std::size_t query_calls = 0;   // answer/count/enumerate invocations
  std::size_t tuples_read = 0;   // tuples consumed from enumerators
};

/// Theorem 3.4 / Lemma 5.3: OuMv via dynamic Boolean answering.
///
/// Works for any CQ whose Boolean closure has a non-q-hierarchical core:
/// the reduction encodes M into ψ_{x,y}'s relation, u into ψ_x's and v
/// into ψ_y's, and reads (u^t)^T M v^t off the Boolean answer
/// (Claims 5.6/5.7).
class OuMvReduction {
 public:
  [[nodiscard]] static Result<OuMvReduction> Create(const Query& q);

  const Query& core() const { return core_; }

  std::vector<bool> Solve(const OuMvInstance& inst,
                          const EngineFactory& factory,
                          ReductionStats* stats = nullptr) const;

 private:
  OuMvReduction(Query core, HierarchyViolation w)
      : core_(std::move(core)), witness_(w) {}

  Query core_;
  HierarchyViolation witness_;
};

/// Theorem 3.3 / Lemma 5.4: OMv via dynamic enumeration.
///
/// Requires a self-join-free query that satisfies condition (i) but
/// violates condition (ii) (free x, quantified y): M goes into ψ_{x,y},
/// v^t into ψ_y, and M v^t is read off the enumerated result.
class OMvEnumerationReduction {
 public:
  [[nodiscard]] static Result<OMvEnumerationReduction> Create(const Query& q);

  std::vector<BitVector> Solve(const OMvInstance& inst,
                               const EngineFactory& factory,
                               ReductionStats* stats = nullptr) const;

 private:
  OMvEnumerationReduction(Query q, FreeViolation w)
      : q_(std::move(q)), witness_(w) {}

  Query q_;
  FreeViolation witness_;
};

/// Theorem 3.5 / Lemma 5.5: OV via dynamic counting.
///
/// Requires a query whose core satisfies (i) but violates (ii). U is
/// encoded into ψ_{x,y} over the domain [n]×[d], each v ∈ V into ψ_y;
/// a round's count reveals how many u^i are non-orthogonal to v. For
/// self-join-free cores the plain count suffices (every homomorphism
/// agrees with some ι_{i,j}); otherwise callers should combine this with
/// RestrictedCountMaintainer (Lemma 5.8).
class OVCountingReduction {
 public:
  [[nodiscard]] static Result<OVCountingReduction> Create(const Query& q);

  /// Returns true iff the instance contains an orthogonal pair.
  bool Solve(const OVInstance& inst, const EngineFactory& factory,
             ReductionStats* stats = nullptr) const;

 private:
  OVCountingReduction(Query core, FreeViolation w)
      : core_(std::move(core)), witness_(w) {}

  Query core_;
  FreeViolation witness_;
};

/// Lemma A.1: OuMv via dynamic enumeration of the self-join query
/// ϕ1(x, y) = (Exx ∧ Exy ∧ Eyy).
///
/// M is encoded as edges {(a_i, b_j)}, u/v as loops on the a/b sides;
/// each round reads at most 2n+1 tuples off a fresh enumerator and
/// outputs 1 iff some (a_i, b_j) pair appears. This is the paper's
/// evidence that enumeration with self-joins can be hard even though
/// ϕ1's Boolean closure is trivially maintainable.
class OuMvViaPhi1Enumeration {
 public:
  OuMvViaPhi1Enumeration();

  const Query& query() const { return phi1_; }

  std::vector<bool> Solve(const OuMvInstance& inst,
                          const EngineFactory& factory,
                          ReductionStats* stats = nullptr) const;

 private:
  Query phi1_;
};

/// Shared encoding of the reduction domains: the paper's elements
/// a_i, b_j, c_s mapped into dom = N>=1.
struct GadgetDomain {
  static Value A(std::size_t i) { return 3 * (i + 1); }
  static Value B(std::size_t j) { return 3 * (j + 1) + 1; }
  static Value C(std::size_t s) { return 3 * (s + 1) + 2; }
  static bool IsA(Value v) { return v % 3 == 0; }
  static std::size_t AIndex(Value v) { return v / 3 - 1; }
};

}  // namespace dyncq::omv

#endif  // DYNCQ_OMV_REDUCTIONS_H_
