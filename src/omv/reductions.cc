#include "omv/reductions.h"

#include <algorithm>

#include "cq/homomorphism.h"
#include "util/check.h"

namespace dyncq::omv {

namespace {

/// ι_{i,j}: maps the witness variables x ↦ a_i, y ↦ b_j, and every other
/// variable z_s ↦ c_s (s = variable id, which is stable and distinct).
struct Iota {
  VarId x;
  VarId y;
  std::size_t i = 0;
  std::size_t j = 0;

  Value operator()(VarId v) const {
    if (v == x) return GadgetDomain::A(i);
    if (v == y) return GadgetDomain::B(j);
    return GadgetDomain::C(v);
  }
};

Tuple MakeTuple(const Atom& atom, const Iota& iota) {
  Tuple t;
  for (const Term& term : atom.args) {
    t.push_back(term.IsConst() ? term.constant : iota(term.var));
  }
  return t;
}

void ApplyCmd(DynamicQueryEngine& e, const UpdateCmd& cmd,
              ReductionStats* stats) {
  e.Apply(cmd);
  if (stats != nullptr) ++stats->updates;
}

/// Inserts the static "for all i,j" tuples of every non-witness atom.
/// Atoms containing x get all i, atoms containing y get all j (the values
/// of variables other than x,y are fixed constants c_s, so the tuple set
/// collapses accordingly).
void InsertStaticAtoms(DynamicQueryEngine& e, const Query& q, VarId x,
                       VarId y, const std::vector<int>& witness_atoms,
                       std::size_t n_i, std::size_t n_j,
                       ReductionStats* stats) {
  for (std::size_t ai = 0; ai < q.NumAtoms(); ++ai) {
    if (std::find(witness_atoms.begin(), witness_atoms.end(),
                  static_cast<int>(ai)) != witness_atoms.end()) {
      continue;
    }
    const Atom& atom = q.atoms()[ai];
    bool has_x = (atom.var_mask & VarBit(x)) != 0;
    bool has_y = (atom.var_mask & VarBit(y)) != 0;
    std::size_t ni = has_x ? n_i : 1;
    std::size_t nj = has_y ? n_j : 1;
    for (std::size_t i = 0; i < ni; ++i) {
      for (std::size_t j = 0; j < nj; ++j) {
        ApplyCmd(e,
                 UpdateCmd::Insert(atom.rel,
                                   MakeTuple(atom, Iota{x, y, i, j})),
                 stats);
      }
    }
  }
}

/// Sets a u/v-encoding atom's tuples to match a target bit vector,
/// issuing only the updates for changed bits. `use_i` selects whether the
/// bit index drives the i (x) or j (y) coordinate.
void SyncVectorAtom(DynamicQueryEngine& e, const Atom& atom, VarId x,
                    VarId y, bool use_i, const BitVector& prev,
                    const BitVector& next, ReductionStats* stats) {
  for (std::size_t b = 0; b < next.size(); ++b) {
    bool was = b < prev.size() && prev.Get(b);
    bool now = next.Get(b);
    if (was == now) continue;
    Iota iota{x, y, use_i ? b : 0, use_i ? 0 : b};
    Tuple t = MakeTuple(atom, iota);
    ApplyCmd(e,
             now ? UpdateCmd::Insert(atom.rel, t)
                 : UpdateCmd::Delete(atom.rel, t),
             stats);
  }
}

}  // namespace

Result<OuMvReduction> OuMvReduction::Create(const Query& q) {
  Query core = ComputeCore(q.BooleanClosure());
  auto w = FindHierarchyViolation(core);
  if (!w.has_value()) {
    return Result<OuMvReduction>::Error(
        "the Boolean core is hierarchical; OuMv reduction (Thm 3.4) does "
        "not apply to " +
        q.ToString());
  }
  return OuMvReduction(std::move(core), *w);
}

std::vector<bool> OuMvReduction::Solve(const OuMvInstance& inst,
                                       const EngineFactory& factory,
                                       ReductionStats* stats) const {
  const std::size_t n = inst.m.rows();
  const VarId x = witness_.x, y = witness_.y;
  const Atom& psi_x = core_.atoms()[static_cast<std::size_t>(witness_.atom_x)];
  const Atom& psi_xy =
      core_.atoms()[static_cast<std::size_t>(witness_.atom_xy)];
  const Atom& psi_y = core_.atoms()[static_cast<std::size_t>(witness_.atom_y)];

  std::unique_ptr<DynamicQueryEngine> engine = factory(core_);

  // Preprocessing: encode M into ψ_{x,y} and fill all other non-witness
  // atoms with their static tuples (at most n^2 + O(n) updates).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (inst.m.Get(i, j)) {
        ApplyCmd(*engine,
                 UpdateCmd::Insert(psi_xy.rel,
                                   MakeTuple(psi_xy, Iota{x, y, i, j})),
                 stats);
      }
    }
  }
  InsertStaticAtoms(*engine, core_, x, y,
                    {witness_.atom_x, witness_.atom_xy, witness_.atom_y}, n,
                    n, stats);

  // Online phase: 2n updates + one Boolean answer per round.
  std::vector<bool> out;
  out.reserve(inst.pairs.size());
  BitVector prev_u(n), prev_v(n);
  for (const auto& [u, v] : inst.pairs) {
    SyncVectorAtom(*engine, psi_x, x, y, /*use_i=*/true, prev_u, u, stats);
    SyncVectorAtom(*engine, psi_y, x, y, /*use_i=*/false, prev_v, v, stats);
    prev_u = u;
    prev_v = v;
    if (stats != nullptr) ++stats->query_calls;
    out.push_back(engine->Answer());
  }
  return out;
}

Result<OMvEnumerationReduction> OMvEnumerationReduction::Create(
    const Query& q) {
  if (!q.IsSelfJoinFree()) {
    return Result<OMvEnumerationReduction>::Error(
        "Theorem 3.3's enumeration reduction requires a self-join-free "
        "query");
  }
  if (FindHierarchyViolation(q).has_value()) {
    return Result<OMvEnumerationReduction>::Error(
        "query violates condition (i); use OuMvReduction instead");
  }
  auto w = FindFreeViolation(q);
  if (!w.has_value()) {
    return Result<OMvEnumerationReduction>::Error(
        "query is q-hierarchical; no reduction applies to " + q.ToString());
  }
  return OMvEnumerationReduction(q, *w);
}

std::vector<BitVector> OMvEnumerationReduction::Solve(
    const OMvInstance& inst, const EngineFactory& factory,
    ReductionStats* stats) const {
  const std::size_t n = inst.m.rows();
  const VarId x = witness_.x, y = witness_.y;
  const Atom& psi_xy = q_.atoms()[static_cast<std::size_t>(witness_.atom_xy)];
  const Atom& psi_y = q_.atoms()[static_cast<std::size_t>(witness_.atom_y)];

  std::unique_ptr<DynamicQueryEngine> engine = factory(q_);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (inst.m.Get(i, j)) {
        ApplyCmd(*engine,
                 UpdateCmd::Insert(psi_xy.rel,
                                   MakeTuple(psi_xy, Iota{x, y, i, j})),
                 stats);
      }
    }
  }
  InsertStaticAtoms(*engine, q_, x, y, {witness_.atom_xy, witness_.atom_y},
                    n, n, stats);

  // Head position of x (guaranteed: x is free).
  std::size_t x_pos = 0;
  for (std::size_t h = 0; h < q_.head().size(); ++h) {
    if (q_.head()[h] == x) x_pos = h;
  }

  std::vector<BitVector> out;
  out.reserve(inst.vectors.size());
  BitVector prev_v(n);
  Tuple row;
  for (const BitVector& v : inst.vectors) {
    SyncVectorAtom(*engine, psi_y, x, y, /*use_i=*/false, prev_v, v, stats);
    prev_v = v;
    if (stats != nullptr) ++stats->query_calls;
    BitVector result(n);
    auto en = engine->NewCursor();
    while (en->Next(&row) == CursorStatus::kOk) {
      if (stats != nullptr) ++stats->tuples_read;
      Value val = row[x_pos];
      DYNCQ_CHECK_MSG(GadgetDomain::IsA(val),
                      "self-join-free reduction read a non-a_i value");
      result.Set(GadgetDomain::AIndex(val), true);
    }
    out.push_back(std::move(result));
  }
  return out;
}

Result<OVCountingReduction> OVCountingReduction::Create(const Query& q) {
  Query core = ComputeCore(q);
  if (FindHierarchyViolation(core).has_value()) {
    return Result<OVCountingReduction>::Error(
        "core violates condition (i); use OuMvReduction (with Lemma 5.8) "
        "instead");
  }
  auto w = FindFreeViolation(core);
  if (!w.has_value()) {
    return Result<OVCountingReduction>::Error(
        "core is q-hierarchical; counting is tractable for " + q.ToString());
  }
  return OVCountingReduction(std::move(core), *w);
}

bool OVCountingReduction::Solve(const OVInstance& inst,
                                const EngineFactory& factory,
                                ReductionStats* stats) const {
  const std::size_t n = inst.u.size();
  const std::size_t d = inst.d;
  const VarId x = witness_.x, y = witness_.y;
  const Atom& psi_xy =
      core_.atoms()[static_cast<std::size_t>(witness_.atom_xy)];
  const Atom& psi_y = core_.atoms()[static_cast<std::size_t>(witness_.atom_y)];

  std::unique_ptr<DynamicQueryEngine> engine = factory(core_);

  // Encode U into ψ_{x,y}: (i,j) present iff the j-th bit of u^i is 1.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (inst.u[i].Get(j)) {
        ApplyCmd(*engine,
                 UpdateCmd::Insert(psi_xy.rel,
                                   MakeTuple(psi_xy, Iota{x, y, i, j})),
                 stats);
      }
    }
  }
  InsertStaticAtoms(*engine, core_, x, y,
                    {witness_.atom_xy, witness_.atom_y}, n, d, stats);

  BitVector prev_v(d);
  for (const BitVector& v : inst.v) {
    SyncVectorAtom(*engine, psi_y, x, y, /*use_i=*/false, prev_v, v, stats);
    prev_v = v;
    if (stats != nullptr) ++stats->query_calls;
    // For a self-join-free core every homomorphism agrees with some
    // ι_{i,j}, so |ϕ(D)| counts exactly the u^i non-orthogonal to v.
    Weight count = engine->Count();
    if (count < n) return true;  // some u^i is orthogonal to v
  }
  return false;
}

namespace {

Query MakePhi1() {
  auto schema = std::make_shared<Schema>();
  DYNCQ_CHECK(schema->AddRelation("E", 2).ok());
  QueryBuilder b(schema);
  VarId x = b.Var("x"), y = b.Var("y");
  b.AddAtom("E", {Term::Var(x), Term::Var(x)});
  b.AddAtom("E", {Term::Var(x), Term::Var(y)});
  b.AddAtom("E", {Term::Var(y), Term::Var(y)});
  b.SetHead({x, y});
  auto q = b.Build();
  DYNCQ_CHECK(q.ok());
  return q.value();
}

}  // namespace

OuMvViaPhi1Enumeration::OuMvViaPhi1Enumeration() : phi1_(MakePhi1()) {}

std::vector<bool> OuMvViaPhi1Enumeration::Solve(
    const OuMvInstance& inst, const EngineFactory& factory,
    ReductionStats* stats) const {
  const std::size_t n = inst.m.rows();
  const RelId e_rel = 0;
  std::unique_ptr<DynamicQueryEngine> engine = factory(phi1_);

  // Preprocessing: E = {(a_i, b_j) : M_ij = 1} (Lemma A.1).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (inst.m.Get(i, j)) {
        ApplyCmd(*engine,
                 UpdateCmd::Insert(
                     e_rel, Tuple{GadgetDomain::A(i), GadgetDomain::B(j)}),
                 stats);
      }
    }
  }

  std::vector<bool> out;
  out.reserve(inst.pairs.size());
  BitVector prev_u(n), prev_v(n);
  Tuple row;
  for (const auto& [u, v] : inst.pairs) {
    // Loops on the a-side track u, loops on the b-side track v.
    for (std::size_t b = 0; b < n; ++b) {
      if ((b < prev_u.size() && prev_u.Get(b)) != u.Get(b)) {
        Tuple loop{GadgetDomain::A(b), GadgetDomain::A(b)};
        ApplyCmd(*engine,
                 u.Get(b) ? UpdateCmd::Insert(e_rel, loop)
                          : UpdateCmd::Delete(e_rel, loop),
                 stats);
      }
      if ((b < prev_v.size() && prev_v.Get(b)) != v.Get(b)) {
        Tuple loop{GadgetDomain::B(b), GadgetDomain::B(b)};
        ApplyCmd(*engine,
                 v.Get(b) ? UpdateCmd::Insert(e_rel, loop)
                          : UpdateCmd::Delete(e_rel, loop),
                 stats);
      }
    }
    prev_u = u;
    prev_v = v;

    // Enumerate at most 2n+1 tuples: loops yield (a,a)/(b,b) pairs;
    // any mixed (a_i, b_j) pair witnesses (u^t)^T M v^t = 1. There are
    // at most 2n loop pairs, so 2n+1 reads decide the round.
    if (stats != nullptr) ++stats->query_calls;
    bool hit = false;
    auto en = engine->NewCursor();
    for (std::size_t reads = 0; reads < 2 * n + 1; ++reads) {
      if (en->Next(&row) != CursorStatus::kOk) break;
      if (stats != nullptr) ++stats->tuples_read;
      if (GadgetDomain::IsA(row[0]) && !GadgetDomain::IsA(row[1])) {
        hit = true;
        break;
      }
    }
    out.push_back(hit);
  }
  return out;
}

}  // namespace dyncq::omv
