// The orthogonal vectors problem (paper §5.2, Conjecture 5.2).
//
// Given sets U, V of n Boolean vectors of dimension d = ceil(log2 n),
// decide whether some u ∈ U, v ∈ V satisfy u^T v = 0. The OV conjecture
// (implied by SETH) rules out O(n^{2-ε}) algorithms for d = ω(log n).
#ifndef DYNCQ_OMV_OV_H_
#define DYNCQ_OMV_OV_H_

#include <vector>

#include "omv/bitmatrix.h"

namespace dyncq::omv {

struct OVInstance {
  std::vector<BitVector> u;  // |U| = n vectors of dimension d
  std::vector<BitVector> v;  // |V| = n vectors of dimension d
  std::size_t d = 0;

  /// Random instance with d = ceil(log2 n) (the conjecture's regime).
  static OVInstance Random(std::size_t n, double density,
                           std::uint64_t seed);

  /// Instance with a planted orthogonal pair.
  static OVInstance RandomWithPlantedPair(std::size_t n, double density,
                                          std::uint64_t seed);
};

/// All-pairs check, O(n^2 d / w).
bool SolveOVNaive(const OVInstance& inst);

/// Number of vectors in U non-orthogonal to `v` (the quantity the
/// counting reduction of Lemma 5.5 reads off per round).
std::size_t CountNonOrthogonal(const std::vector<BitVector>& u,
                               const BitVector& v);

}  // namespace dyncq::omv

#endif  // DYNCQ_OMV_OV_H_
