#include "omv/ov.h"

#include <cmath>

namespace dyncq::omv {

namespace {

std::size_t LogDim(std::size_t n) {
  std::size_t d = 1;
  while ((std::size_t{1} << d) < n) ++d;
  return d;
}

}  // namespace

OVInstance OVInstance::Random(std::size_t n, double density,
                              std::uint64_t seed) {
  Rng rng(seed);
  OVInstance inst;
  inst.d = LogDim(n);
  inst.u.reserve(n);
  inst.v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.u.push_back(BitVector::Random(inst.d, density, rng));
    inst.v.push_back(BitVector::Random(inst.d, density, rng));
  }
  return inst;
}

OVInstance OVInstance::RandomWithPlantedPair(std::size_t n, double density,
                                             std::uint64_t seed) {
  OVInstance inst = Random(n, density, seed);
  Rng rng(seed ^ 0xabcdef12345ULL);
  std::size_t i = rng.Below(n), j = rng.Below(n);
  // Make u[i] and v[j] complementary halves: orthogonal by construction.
  for (std::size_t b = 0; b < inst.d; ++b) {
    bool left = b < inst.d / 2;
    inst.u[i].Set(b, left);
    inst.v[j].Set(b, !left);
  }
  return inst;
}

bool SolveOVNaive(const OVInstance& inst) {
  for (const BitVector& u : inst.u) {
    for (const BitVector& v : inst.v) {
      if (!u.Dot(v)) return true;
    }
  }
  return false;
}

std::size_t CountNonOrthogonal(const std::vector<BitVector>& u,
                               const BitVector& v) {
  std::size_t c = 0;
  for (const BitVector& ui : u) {
    if (ui.Dot(v)) ++c;
  }
  return c;
}

}  // namespace dyncq::omv
