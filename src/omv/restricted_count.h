// Lemma 5.8: maintaining |ϕ(D) ∩ (X_{x1} × ... × X_{xk})| under updates.
//
// Given pairwise disjoint domain classes X_{x1..xk} (one per head
// position), the maintainer runs (k+1)·2^k copies of a dynamic counting
// engine: for every I ⊆ [k] and ℓ ∈ {0..k} it maintains ϕ over the
// copy-database D_{I,ℓ} in which every element of ⋃_{i∈I} X_{xi} is
// replaced by ℓ copies. From the copy counts it recovers, per I, the
// number of result tuples whose positions all carry I-class elements
// (solving a square Vandermonde system with nodes {0..k}; the paper's
// ℓ ∈ [k] system is underdetermined by one, hence the extra ℓ = 0 copy),
// then applies inclusion–exclusion (eq. 8) and divides by |Π| (eq. 5).
//
// As in the paper, correctness of eq. (5) relies on the existence of a
// homomorphism g : D → ϕ with g(X_{xi}) = {xi} — which the §5.4 reduction
// databases provide by construction.
#ifndef DYNCQ_OMV_RESTRICTED_COUNT_H_
#define DYNCQ_OMV_RESTRICTED_COUNT_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/engine_iface.h"
#include "cq/query.h"
#include "omv/reductions.h"
#include "storage/database.h"
#include "util/exact_linalg.h"

namespace dyncq::omv {

class RestrictedCountMaintainer {
 public:
  /// `class_of(v)` returns the head position i with v ∈ X_{x_{i+1}}, or
  /// kNoClass. `factory` builds the underlying counting engines.
  static constexpr int kNoClass = -1;
  using ClassFn = std::function<int(Value)>;

  RestrictedCountMaintainer(const Query& q, ClassFn class_of,
                            const EngineFactory& factory);

  /// Forwards a base update to all copy databases (2^O(k) derived
  /// updates). Returns true iff the base database changed.
  bool Apply(const UpdateCmd& cmd);

  /// Current |ϕ(D) ∩ (X_{x1} × ... × X_{xk})|.
  Int128 RestrictedCount() const;

  std::size_t NumEngines() const { return engines_.size(); }
  std::size_t PiSize() const { return pi_size_; }

 private:
  /// ⟨a⟩_s encoding into the numeric domain.
  Value Encode(Value a, std::size_t s) const {
    return a * static_cast<Value>(k_ + 1) + s;
  }

  void ForwardDelta(const UpdateCmd& cmd);

  Query q_;
  ClassFn class_of_;
  int k_;
  std::size_t pi_size_;
  Database base_db_;  // set-semantics deduplication of the base updates
  // engines_[I * (k+1) + l] maintains ϕ over D_{I,l}.
  std::vector<std::unique_ptr<DynamicQueryEngine>> engines_;
};

}  // namespace dyncq::omv

#endif  // DYNCQ_OMV_RESTRICTED_COUNT_H_
