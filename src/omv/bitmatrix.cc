#include "omv/bitmatrix.h"

#include <bit>

#include "util/check.h"

namespace dyncq::omv {

bool BitVector::Dot(const BitVector& o) const {
  DYNCQ_DCHECK(n_ == o.n_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] & o.words_[w]) return true;
  }
  return false;
}

std::size_t BitVector::PopCount() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

BitVector BitVector::Random(std::size_t n, double density, Rng& rng) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Chance(density)) v.Set(i, true);
  }
  return v;
}

BitVector BitMatrix::Multiply(const BitVector& v) const {
  DYNCQ_CHECK(v.size() == cols_);
  BitVector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const std::uint64_t* row = &words_[i * row_words_];
    bool hit = false;
    for (std::size_t w = 0; w < row_words_; ++w) {
      if (row[w] & v.words()[w]) {
        hit = true;
        break;
      }
    }
    out.Set(i, hit);
  }
  return out;
}

BitVector BitMatrix::MultiplyNaive(const BitVector& v) const {
  DYNCQ_CHECK(v.size() == cols_);
  BitVector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    bool hit = false;
    for (std::size_t j = 0; j < cols_ && !hit; ++j) {
      hit = Get(i, j) && v.Get(j);
    }
    out.Set(i, hit);
  }
  return out;
}

bool BitMatrix::BilinearForm(const BitVector& u, const BitVector& v) const {
  DYNCQ_CHECK(u.size() == rows_ && v.size() == cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    if (!u.Get(i)) continue;
    const std::uint64_t* row = &words_[i * row_words_];
    for (std::size_t w = 0; w < row_words_; ++w) {
      if (row[w] & v.words()[w]) return true;
    }
  }
  return false;
}

BitMatrix BitMatrix::Random(std::size_t rows, std::size_t cols,
                            double density, Rng& rng) {
  BitMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.Chance(density)) m.Set(i, j, true);
    }
  }
  return m;
}

}  // namespace dyncq::omv
