// Update commands: single-tuple inserts and deletes (paper §2, Updates).
#ifndef DYNCQ_STORAGE_UPDATE_H_
#define DYNCQ_STORAGE_UPDATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/tuple.h"
#include "util/open_hash_map.h"
#include "util/types.h"

namespace dyncq {

enum class UpdateKind : std::uint8_t { kInsert, kDelete };

struct UpdateCmd {
  UpdateKind kind = UpdateKind::kInsert;
  RelId rel = kInvalidRel;
  Tuple tuple;

  static UpdateCmd Insert(RelId rel, Tuple t) {
    return UpdateCmd{UpdateKind::kInsert, rel, std::move(t)};
  }
  static UpdateCmd Delete(RelId rel, Tuple t) {
    return UpdateCmd{UpdateKind::kDelete, rel, std::move(t)};
  }
};

/// A sequence of update commands (an update stream).
using UpdateStream = std::vector<UpdateCmd>;

/// Options for batched update application, threaded through
/// DynamicQueryEngine::ApplyBatch / ApplyAll, QuerySession::NewBatch,
/// and Database::ApplyAll.
struct BatchOptions {
  /// Number of ingestion shards for the engine's phase-A descent.
  /// 1 (the default) selects the deterministic sequential pipeline;
  /// k > 1 routes deltas by root value onto k worker threads (see
  /// core::Engine::ApplyBatch). Engines without a sharded pipeline —
  /// and the storage-level Database::ApplyAll — apply sequentially
  /// regardless.
  std::size_t shards = 1;
};

/// Reusable in-batch fold for ordered batch replay.
///
/// Under set semantics the LAST command on a (relation, tuple) key forces
/// that tuple's final presence — insert forces present, delete forces
/// absent — regardless of earlier commands on the key or of the
/// pre-batch database state. An ordered replay may therefore drop every
/// superseded command: an inverse insert/delete pair with no later
/// command on its tuple collapses to its second half, and the dropped
/// half costs zero relation probes. Note that dropping BOTH halves would
/// be wrong under replay semantics ("insert t; delete t" must leave t
/// absent even when t was resident before the batch); the unordered
/// intention semantics that full annihilation implies is UpdateBatch's
/// contract (core/session.h), not ApplyBatch's.
class BatchFolder {
 public:
  /// Computes the per-key final commands of `cmds`. Returns true and
  /// fills `kept` with the ascending original indices of the surviving
  /// commands iff at least one command was folded away; returns false
  /// (leaving `kept` untouched) when nothing folds — callers then apply
  /// the original span with no indirection. Delete-free batches (bulk
  /// loads) are recognized in one cheap scan and never pay for the key
  /// table: without a delete there is no inverse pair, and a duplicate
  /// insert is absorbed by the relation's own set-semantics probe.
  bool Fold(std::span<const UpdateCmd> cmds,
            std::vector<std::uint32_t>* kept) {
    if (cmds.size() < 2) return false;
    bool has_delete = false;
    for (const UpdateCmd& cmd : cmds) {
      if (cmd.kind == UpdateKind::kDelete) {
        has_delete = true;
        break;
      }
    }
    if (!has_delete) return false;

    last_.Clear();
    last_.Reserve(cmds.size());
    keep_.assign(cmds.size(), 1);
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      // Key = tuple ++ relation id: keys compare equal iff arity, tuple,
      // and relation all match (same scheme as UpdateBatch staging).
      Tuple key = cmds[i].tuple;
      key.push_back(static_cast<Value>(cmds[i].rel));
      auto [prior, inserted] =
          last_.Insert(key, static_cast<std::uint32_t>(i));
      if (!inserted) {
        keep_[*prior] = 0;
        *prior = static_cast<std::uint32_t>(i);
        ++dropped;
      }
    }
    if (dropped == 0) return false;
    kept->clear();
    kept->reserve(cmds.size() - dropped);
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      if (keep_[i]) kept->push_back(static_cast<std::uint32_t>(i));
    }
    return true;
  }

 private:
  OpenHashMap<Tuple, std::uint32_t, TupleHash> last_;  // key -> last index
  std::vector<char> keep_;  // per-command survival flags (scratch)
};

inline std::string UpdateToString(const UpdateCmd& u,
                                  const std::string& rel_name) {
  return std::string(u.kind == UpdateKind::kInsert ? "insert " : "delete ") +
         rel_name + TupleToString(u.tuple);
}

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_UPDATE_H_
