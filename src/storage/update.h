// Update commands: single-tuple inserts and deletes (paper §2, Updates).
#ifndef DYNCQ_STORAGE_UPDATE_H_
#define DYNCQ_STORAGE_UPDATE_H_

#include <string>
#include <vector>

#include "storage/tuple.h"
#include "util/types.h"

namespace dyncq {

enum class UpdateKind : std::uint8_t { kInsert, kDelete };

struct UpdateCmd {
  UpdateKind kind = UpdateKind::kInsert;
  RelId rel = kInvalidRel;
  Tuple tuple;

  static UpdateCmd Insert(RelId rel, Tuple t) {
    return UpdateCmd{UpdateKind::kInsert, rel, std::move(t)};
  }
  static UpdateCmd Delete(RelId rel, Tuple t) {
    return UpdateCmd{UpdateKind::kDelete, rel, std::move(t)};
  }
};

/// A sequence of update commands (an update stream).
using UpdateStream = std::vector<UpdateCmd>;

inline std::string UpdateToString(const UpdateCmd& u,
                                  const std::string& rel_name) {
  return std::string(u.kind == UpdateKind::kInsert ? "insert " : "delete ") +
         rel_name + TupleToString(u.tuple);
}

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_UPDATE_H_
