// Database tuples.
#ifndef DYNCQ_STORAGE_TUPLE_H_
#define DYNCQ_STORAGE_TUPLE_H_

#include <string>

#include "util/hash.h"
#include "util/small_vector.h"
#include "util/str.h"
#include "util/types.h"

namespace dyncq {

/// A database tuple: a fixed-arity sequence of constants. Inline storage
/// covers arities up to 4 without heap allocation.
using Tuple = SmallVector<Value, 4>;

struct TupleHash {
  std::uint64_t operator()(const Tuple& t) const {
    return HashWords(t.data(), t.size());
  }
};

inline std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_TUPLE_H_
