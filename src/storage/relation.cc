#include "storage/relation.h"

#include "util/check.h"

namespace dyncq {

bool Relation::Contains(const Tuple& t) const {
  DYNCQ_DCHECK(t.size() == arity_);
  return tuples_.Contains(t);
}

bool Relation::Insert(const Tuple& t) {
  DYNCQ_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  return tuples_.Insert(t);
}

bool Relation::Erase(const Tuple& t) {
  DYNCQ_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  return tuples_.Erase(t);
}

std::string Relation::ToString(const std::string& name) const {
  std::string out = name + " = {";
  bool first = true;
  for (const Tuple& t : tuples_) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t);
  }
  out += "}";
  return out;
}

}  // namespace dyncq
