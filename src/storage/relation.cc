#include "storage/relation.h"

#include <bit>
#include <climits>
#include <cstring>
#include <new>

#include "util/check.h"
#include "util/failpoint.h"

// Define DYNCQ_FORCE_SWAR_GROUP to compile the portable word-parallel
// group scan on SSE2 hosts too (used to test the fallback on x86).
#if defined(__SSE2__) && !defined(DYNCQ_FORCE_SWAR_GROUP)
#define DYNCQ_GROUP_SSE2 1
#include <emmintrin.h>
#endif

namespace dyncq {

namespace {

/// Largest power-of-two slot count representable in size_t; capacity
/// requests beyond it are unrepresentable (DCHECK) and clamp here so
/// release builds fail with a thrown allocation error instead of the
/// previous overflow / infinite `c <<= 1` loop.
constexpr std::size_t kMaxCapacity = (SIZE_MAX >> 1) + 1;

std::size_t NormalizeCapacity(std::size_t n) {
  constexpr std::size_t kMinCapacity = 16;  // one metadata group
  if (n <= kMinCapacity) return kMinCapacity;
  DYNCQ_DCHECK(n <= kMaxCapacity);
  if (n > kMaxCapacity) return kMaxCapacity;
  return std::bit_ceil(n);
}

/// One 16-slot metadata group. Match* return a bitmask with bit i set
/// for slot i of the group. SSE2 compares all 16 bytes in two
/// instructions; the portable fallback runs the same comparisons
/// word-parallel on two 64-bit halves (the zero-byte trick
/// `(v - lows) & ~v & highs` is exact, and multiplying the 0x80 flags
/// by 0x0002040810204081 packs them into the top byte, i.e. a scalar
/// movemask).
struct Group {
#if defined(DYNCQ_GROUP_SSE2)
  explicit Group(const std::uint8_t* p)
      : ctrl(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))) {}

  std::uint32_t Match(std::uint8_t h2) const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(ctrl, _mm_set1_epi8(static_cast<char>(h2)))));
  }
  std::uint32_t MatchEmpty() const { return Match(0x80); }  // kMetaEmpty
  /// Empty or tombstone: exactly the bytes with the high bit set.
  std::uint32_t MatchEmptyOrDeleted() const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(ctrl));
  }

  __m128i ctrl;
#else
  explicit Group(const std::uint8_t* p) {
    std::memcpy(&lo, p, 8);
    std::memcpy(&hi, p + 8, 8);
  }

  static std::uint64_t Broadcast(std::uint8_t b) {
    return 0x0101010101010101ULL * b;
  }
  static std::uint64_t ZeroBytes(std::uint64_t v) {
    return (v - 0x0101010101010101ULL) & ~v & 0x8080808080808080ULL;
  }
  static std::uint32_t PackHighBits(std::uint64_t m) {
    return static_cast<std::uint32_t>(
        ((m & 0x8080808080808080ULL) * 0x0002040810204081ULL) >> 56);
  }

  std::uint32_t Match(std::uint8_t h2) const {
    const std::uint64_t b = Broadcast(h2);
    return PackHighBits(ZeroBytes(lo ^ b)) |
           (PackHighBits(ZeroBytes(hi ^ b)) << 8);
  }
  std::uint32_t MatchEmpty() const { return Match(0x80); }
  std::uint32_t MatchEmptyOrDeleted() const {
    return PackHighBits(lo) | (PackHighBits(hi) << 8);
  }

  std::uint64_t lo, hi;
#endif
};

}  // namespace

bool Relation::SlotEquals(std::size_t i, const Value* key) const {
  const Value* s = slots_.get() + i * arity_;
  for (std::size_t p = 0; p < arity_; ++p) {
    if (s[p] != key[p]) return false;
  }
  return true;
}

std::size_t Relation::FindSlot(const Tuple& t, std::uint64_t h) const {
  const std::uint8_t h2 = H2(h);
  const std::size_t group_mask = num_groups() - 1;
  std::size_t g = GroupFor(h);
  while (true) {
    Group grp(meta_.get() + g * kGroupWidth);
    for (std::uint32_t m = grp.Match(h2); m != 0; m &= m - 1) {
      const std::size_t i =
          g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
      if (SlotEquals(i, t.data())) return i;
    }
    // An empty byte ends every probe sequence: occupancy is capped at
    // 7/8, and a group's empty bytes never vanish between rehashes
    // without the group being probed through while full.
    if (grp.MatchEmpty() != 0) return kNoSlot;
    g = (g + 1) & group_mask;
  }
}

Relation::ProbeResult Relation::FindOrPrepareInsert(
    const Tuple& t, std::uint64_t h) const {
  const std::uint8_t h2 = H2(h);
  const std::size_t group_mask = num_groups() - 1;
  std::size_t g = GroupFor(h);
  std::size_t insert_slot = kNoSlot;
  while (true) {
    Group grp(meta_.get() + g * kGroupWidth);
    for (std::uint32_t m = grp.Match(h2); m != 0; m &= m - 1) {
      const std::size_t i =
          g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
      if (SlotEquals(i, t.data())) return {i, true};
    }
    if (insert_slot == kNoSlot) {
      const std::uint32_t m = grp.MatchEmptyOrDeleted();
      if (m != 0) {
        insert_slot =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
      }
    }
    if (grp.MatchEmpty() != 0) return {insert_slot, false};
    g = (g + 1) & group_mask;
  }
}

std::size_t Relation::FindInsertSlot(std::uint64_t h) const {
  const std::size_t group_mask = num_groups() - 1;
  std::size_t g = GroupFor(h);
  while (true) {
    Group grp(meta_.get() + g * kGroupWidth);
    const std::uint32_t m = grp.MatchEmptyOrDeleted();
    if (m != 0) {
      return g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
    }
    g = (g + 1) & group_mask;
  }
}

bool Relation::Contains(const Tuple& t) const {
  DYNCQ_DCHECK(t.size() == arity_);
  if (arity_ == 0) return has_empty_tuple_;
  if (cap_ == 0) return false;
  return FindSlot(t, Hash(t)) != kNoSlot;
}

bool Relation::Insert(const Tuple& t) {
  DYNCQ_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  if (arity_ == 0) {
    if (has_empty_tuple_) return false;
    has_empty_tuple_ = true;
    size_ = 1;
    return true;
  }
  // Value 0 is the engine-wide reserved sentinel: the core engine's
  // ChildIndex would be corrupted by it in any key position, so it is
  // rejected here even though this table's metadata layout no longer
  // needs an in-slot sentinel.
  for (std::size_t p = 0; p < arity_; ++p) {
    DYNCQ_CHECK_MSG(t[p] != 0,
                    "value 0 is reserved (util/types.h) and cannot be "
                    "stored");
  }
  if (cap_ == 0) Rehash(NormalizeCapacity(0));
  const std::uint64_t h = Hash(t);
  // Probe for presence BEFORE any growth decision: a duplicate insert
  // must be side-effect-free (the pre-swiss table grew first and could
  // allocate + rehash on a no-op at the load threshold).
  ProbeResult pr = FindOrPrepareInsert(t, h);
  if (pr.found) return false;  // no-op: probe not charged
  bool into_empty = meta_[pr.slot] == kMetaEmpty;
  if (into_empty && size_ + tombstones_ + 1 > MaxOccupancy(cap_)) {
    Rehash(GrownCapacity());
    pr.slot = FindInsertSlot(h);
    into_empty = true;  // a fresh table has no tombstones
  }
  ++probes_;
  if (!into_empty) --tombstones_;
  meta_[pr.slot] = H2(h);
  std::memcpy(slots_.get() + pr.slot * arity_, t.data(),
              arity_ * sizeof(Value));
  ++size_;
  return true;
}

bool Relation::Erase(const Tuple& t) {
  DYNCQ_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  if (arity_ == 0) {
    if (!has_empty_tuple_) return false;
    has_empty_tuple_ = false;
    size_ = 0;
    return true;
  }
  if (cap_ == 0) return false;
  const std::size_t i = FindSlot(t, Hash(t));
  if (i == kNoSlot) return false;  // no-op: probe not charged
  ++probes_;
  // Tombstone, unless the slot's group still has an empty byte: then no
  // probe sequence has ever continued past this group since the last
  // rehash (inserts stop at the first group with an empty byte, and a
  // group that runs out of empty bytes can only regain them here, which
  // requires one to still exist), so the slot can revert to empty and
  // lookups keep terminating early. Low-churn tables stay tombstone-free
  // this way; saturated ones amortize the purge into the next rehash.
  const std::size_t group_base = (i / kGroupWidth) * kGroupWidth;
  if (Group(meta_.get() + group_base).MatchEmpty() != 0) {
    meta_[i] = kMetaEmpty;
  } else {
    meta_[i] = kMetaDeleted;
    ++tombstones_;
  }
  --size_;
  return true;
}

void Relation::Clear() {
  if (arity_ == 0) {
    has_empty_tuple_ = false;
    size_ = 0;
    return;
  }
  if (cap_ > 0) {
    std::memset(meta_.get(), kMetaEmpty, cap_);
  }
  size_ = 0;
  tombstones_ = 0;
}

void Relation::Reserve(std::size_t n) {
  if (arity_ == 0) return;
  // The growth threshold trips on occupancy (live + tombstones), so the
  // target counts current tombstones too: a Reserve(n)-backed fill of n
  // live tuples then never rehashes mid-fill. Capacity keeps the target
  // under 7/8: cap >= ceil(8*target/7), computed additively so nothing
  // overflows before the representability check (the old `n * 4 / 3 + 1`
  // wrapped near SIZE_MAX and then fed an infinite `c <<= 1` loop).
  DYNCQ_DCHECK(n <= SIZE_MAX - tombstones_);  // unrepresentable request
  const std::size_t target =
      n <= SIZE_MAX - tombstones_ ? n + tombstones_ : SIZE_MAX;
  std::size_t want = target + target / 7 + 1;
  DYNCQ_DCHECK(want > target);  // unrepresentable request
  if (want < target) want = kMaxCapacity;
  want = NormalizeCapacity(want);
  if (want > cap_) Rehash(want);
}

std::size_t Relation::GrownCapacity() const {
  if (size_ * 2 <= cap_) return cap_;  // purge tombstones in place
  DYNCQ_DCHECK(cap_ <= kMaxCapacity / 2);
  return cap_ < kMaxCapacity ? cap_ * 2 : cap_;
}

void Relation::Rehash(std::size_t new_cap) {
  // Allocate the new arrays BEFORE touching the published state: the
  // clamp path for unrepresentable Reserve requests deliberately ends
  // in a thrown allocation error in release builds, and that throw must
  // leave the table intact (old contents, consistent cap_), not point a
  // non-zero cap_ at null arrays. The word count is overflow-checked
  // for the same reason — a wrapped multiply would "succeed" with a
  // tiny allocation and corrupt the heap instead of throwing.
  DYNCQ_DCHECK(arity_ > 0);  // nullary relations never rehash
  DYNCQ_DCHECK(new_cap <= SIZE_MAX / arity_);
  if (new_cap > SIZE_MAX / arity_) throw std::bad_alloc();
  DYNCQ_ALLOC_FAILPOINT();
  auto new_meta = std::make_unique<std::uint8_t[]>(new_cap);
  std::memset(new_meta.get(), kMetaEmpty, new_cap);
  // Slot words are gated by the metadata bytes, so they need no
  // initialization.
  auto new_slots = std::make_unique_for_overwrite<Value[]>(new_cap * arity_);
  std::unique_ptr<std::uint8_t[]> old_meta = std::move(meta_);
  std::unique_ptr<Value[]> old_slots = std::move(slots_);
  const std::size_t old_cap = cap_;
  meta_ = std::move(new_meta);
  slots_ = std::move(new_slots);
  cap_ = new_cap;
  tombstones_ = 0;
  for (std::size_t i = 0; i < old_cap; ++i) {
    if (!MetaIsFull(old_meta[i])) continue;
    const Value* s = old_slots.get() + i * arity_;
    const std::uint64_t h = HashWords(s, arity_);
    const std::size_t j = FindInsertSlot(h);
    meta_[j] = H2(h);
    std::memcpy(slots_.get() + j * arity_, s, arity_ * sizeof(Value));
  }
}

std::string Relation::ToString(const std::string& name) const {
  std::string out = name + " = {";
  bool first = true;
  for (const Tuple& t : *this) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t);
  }
  out += "}";
  return out;
}

}  // namespace dyncq
