#include "storage/relation.h"

#include <cstring>

#include "util/check.h"

namespace dyncq {

namespace {

std::size_t NormalizeCapacity(std::size_t n) {
  std::size_t c = 8;
  while (c < n) c <<= 1;
  return c;
}

}  // namespace

bool Relation::SlotEquals(std::size_t i, const Tuple& t) const {
  const Value* s = slots_.get() + i * arity_;
  for (std::size_t p = 0; p < arity_; ++p) {
    if (s[p] != t[p]) return false;
  }
  return true;
}

std::size_t Relation::ProbeFor(const Tuple& t) const {
  std::size_t i = static_cast<std::size_t>(Hash(t)) & (cap_ - 1);
  while (slots_[i * arity_] != 0 && !SlotEquals(i, t)) {
    i = (i + 1) & (cap_ - 1);
  }
  return i;
}

bool Relation::Contains(const Tuple& t) const {
  DYNCQ_DCHECK(t.size() == arity_);
  if (arity_ == 0) return has_empty_tuple_;
  if (cap_ == 0) return false;
  return slots_[ProbeFor(t) * arity_] != 0;
}

bool Relation::Insert(const Tuple& t) {
  DYNCQ_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  if (arity_ == 0) {
    if (has_empty_tuple_) return false;
    has_empty_tuple_ = true;
    size_ = 1;
    return true;
  }
  // Value 0 is the engine-wide empty-slot sentinel: both this table
  // (first word) and the core engine's ChildIndex (any key position)
  // would be corrupted by it, so reject it in every position.
  for (std::size_t p = 0; p < arity_; ++p) {
    DYNCQ_CHECK_MSG(t[p] != 0,
                    "value 0 is reserved (util/types.h) and cannot be "
                    "stored");
  }
  if (cap_ == 0) {
    Rehash(8);
  } else if ((size_ + 1) * 4 >= cap_ * 3) {
    Rehash(cap_ * 2);
  }
  std::size_t i = ProbeFor(t);
  if (slots_[i * arity_] != 0) return false;  // no-op: probe not charged
  ++probes_;
  std::memcpy(slots_.get() + i * arity_, t.data(),
              arity_ * sizeof(Value));
  ++size_;
  return true;
}

bool Relation::Erase(const Tuple& t) {
  DYNCQ_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  if (arity_ == 0) {
    if (!has_empty_tuple_) return false;
    has_empty_tuple_ = false;
    size_ = 0;
    return true;
  }
  if (cap_ == 0) return false;
  std::size_t i = ProbeFor(t);
  if (slots_[i * arity_] == 0) return false;  // no-op: probe not charged
  ++probes_;
  EraseSlot(i);
  return true;
}

/// Backward-shift deletion: closes the probe-sequence gap left at `i`.
void Relation::EraseSlot(std::size_t i) {
  slots_[i * arity_] = 0;
  --size_;
  const std::size_t mask = cap_ - 1;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (slots_[j * arity_] == 0) return;
    std::size_t k = static_cast<std::size_t>(HashSlot(j)) & mask;
    // The entry at j may move back to the hole at i iff its ideal slot k
    // does not lie cyclically strictly between i and j.
    bool movable = (j > i) ? (k <= i || k > j) : (k <= i && k > j);
    if (movable) {
      std::memcpy(slots_.get() + i * arity_, slots_.get() + j * arity_,
                  arity_ * sizeof(Value));
      slots_[j * arity_] = 0;
      i = j;
    }
  }
}

void Relation::Clear() {
  if (arity_ == 0) {
    has_empty_tuple_ = false;
    size_ = 0;
    return;
  }
  if (cap_ > 0) {
    std::memset(slots_.get(), 0, cap_ * arity_ * sizeof(Value));
  }
  size_ = 0;
}

void Relation::Reserve(std::size_t n) {
  if (arity_ == 0) return;
  std::size_t want = NormalizeCapacity(n * 4 / 3 + 1);
  if (want > cap_) Rehash(want);
}

void Relation::Rehash(std::size_t new_cap) {
  std::unique_ptr<Value[]> old = std::move(slots_);
  std::size_t old_cap = cap_;
  slots_ = std::make_unique<Value[]>(new_cap * arity_);  // zero = empty
  cap_ = new_cap;
  const std::size_t mask = cap_ - 1;
  for (std::size_t i = 0; i < old_cap; ++i) {
    const Value* s = old.get() + i * arity_;
    if (s[0] == 0) continue;
    std::size_t j = static_cast<std::size_t>(HashWords(s, arity_)) & mask;
    while (slots_[j * arity_] != 0) j = (j + 1) & mask;
    std::memcpy(slots_.get() + j * arity_, s, arity_ * sizeof(Value));
  }
}

std::string Relation::ToString(const std::string& name) const {
  std::string out = name + " = {";
  bool first = true;
  for (const Tuple& t : *this) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t);
  }
  out += "}";
  return out;
}

}  // namespace dyncq
