// Plain-text serialization for databases and update streams.
//
// Format (one command per line, '#' comments, blank lines ignored):
//
//   + R(1, 2, 3)     insert
//   - R(1, 2, 3)     delete
//   R(1, 2, 3)       insert (shorthand, used by database dumps)
//
// Values are the engine's numeric constants; use Dictionary to map
// external strings.
#ifndef DYNCQ_STORAGE_IO_H_
#define DYNCQ_STORAGE_IO_H_

#include <iosfwd>
#include <string_view>

#include "cq/schema.h"
#include "storage/database.h"
#include "storage/update.h"
#include "util/result.h"

namespace dyncq {

/// Writes every tuple of `db` as insert shorthand lines.
void WriteDatabase(const Database& db, std::ostream& os);

/// Writes an update stream (with +/- markers).
void WriteUpdateStream(const UpdateStream& stream, const Schema& schema,
                       std::ostream& os);

/// Parses an update stream against `schema`. Unknown relations, arity
/// mismatches, or malformed lines produce an error naming the line.
[[nodiscard]] Result<UpdateStream> ReadUpdateStream(std::istream& is,
                                      const Schema& schema);

/// Convenience: parses a single command line (no comments).
[[nodiscard]] Result<UpdateCmd> ParseUpdateLine(std::string_view line,
                                  const Schema& schema);

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_IO_H_
