// A relation instance: a finite set of fixed-arity tuples.
#ifndef DYNCQ_STORAGE_RELATION_H_
#define DYNCQ_STORAGE_RELATION_H_

#include <cstddef>
#include <string>

#include "storage/tuple.h"
#include "util/open_hash_map.h"
#include "util/types.h"

namespace dyncq {

/// Set-semantics relation storage. Insert/Erase report whether the
/// database actually changed, which drives the no-op detection required
/// by every dynamic engine (inserting a present tuple or deleting an
/// absent one must leave all data structures untouched).
class Relation {
 public:
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Contains(const Tuple& t) const;

  /// Returns true iff `t` was newly inserted.
  bool Insert(const Tuple& t);

  /// Returns true iff `t` was present.
  bool Erase(const Tuple& t);

  void Clear() { tuples_.Clear(); }
  void Reserve(std::size_t n) { tuples_.Reserve(n); }

  using const_iterator = OpenHashSet<Tuple, TupleHash>::const_iterator;
  const_iterator begin() const { return tuples_.begin(); }
  const_iterator end() const { return tuples_.end(); }

  std::string ToString(const std::string& name) const;

 private:
  std::size_t arity_;
  OpenHashSet<Tuple, TupleHash> tuples_;
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_RELATION_H_
