// A relation instance: a finite set of fixed-arity tuples.
#ifndef DYNCQ_STORAGE_RELATION_H_
#define DYNCQ_STORAGE_RELATION_H_

#include <cstddef>
#include <memory>
#include <string>

#include "storage/tuple.h"
#include "util/hash.h"
#include "util/types.h"

namespace dyncq {

/// Set-semantics relation storage. Insert/Erase report whether the
/// database actually changed, which drives the no-op detection required
/// by every dynamic engine (inserting a present tuple or deleting an
/// absent one must leave all data structures untouched).
///
/// Storage is a flat open-addressing table of `arity` machine words per
/// slot (linear probing, backward-shift deletion). The relation knows its
/// arity, so no per-tuple vector header or separate occupancy array is
/// needed: a slot is empty iff its first word is the reserved Value 0
/// (util/types.h). At arity 2 a slot is 16 bytes — 3.5x denser than the
/// previous SmallVector-entry table, which keeps the per-update hash
/// probe in the fast region of the cache hierarchy.
class Relation {
 public:
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(const Tuple& t) const;

  /// Returns true iff `t` was newly inserted.
  bool Insert(const Tuple& t);

  /// Returns true iff `t` was present.
  bool Erase(const Tuple& t);

  void Clear();
  void Reserve(std::size_t n);

  /// Hints the hash bucket `t` probes into cache (batch pipelines look a
  /// few commands ahead to hide the set-lookup latency).
  void Prefetch(const Tuple& t) const {
    if (cap_ > 0) {
      __builtin_prefetch(slots_.get() +
                         (Hash(t) & (cap_ - 1)) * arity_);
    }
  }

  /// Forward iterator over the stored tuples; materializes each tuple by
  /// value (range-for with `const Tuple&` binds it as usual).
  class const_iterator {
   public:
    const_iterator(const Relation* r, std::size_t i) : r_(r), i_(i) {
      SkipEmpty();
    }
    Tuple operator*() const {
      if (r_->arity_ == 0) return Tuple();
      const Value* s = r_->slots_.get() + i_ * r_->arity_;
      return Tuple(s, s + r_->arity_);
    }
    const_iterator& operator++() {
      ++i_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    void SkipEmpty() {
      if (r_->arity_ == 0) return;  // nullary: index counts () directly
      while (i_ < r_->cap_ && r_->slots_[i_ * r_->arity_] == 0) ++i_;
    }
    const Relation* r_;
    std::size_t i_;
  };

  /// Number of hash probes charged to database-changing operations
  /// (effective Insert/Erase). Batch pipelines use the delta of this
  /// counter to prove work was avoided (e.g. the UpdateBatch net-delta
  /// pre-pass cancelling inverse pairs before any probe, or the ordered
  /// ApplyBatch fold dropping superseded commands). No-op commands —
  /// re-inserting a present tuple, deleting an absent one, exactly what
  /// StreamOptions.noop_ratio generates — short-circuit before a probe
  /// is charged, as do read-only Contains lookups, so deliberate no-ops
  /// in a stream do not pollute the zero-probe accounting.
  std::uint64_t probe_count() const { return probes_; }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    if (arity_ == 0) return const_iterator(this, has_empty_tuple_ ? 1 : 0);
    return const_iterator(this, cap_);
  }

  std::string ToString(const std::string& name) const;

 private:
  std::uint64_t Hash(const Tuple& t) const {
    return HashWords(t.data(), arity_);
  }
  std::uint64_t HashSlot(std::size_t i) const {
    return HashWords(slots_.get() + i * arity_, arity_);
  }
  bool SlotEquals(std::size_t i, const Tuple& t) const;
  /// Slot holding `t`, or the first empty slot of its probe sequence.
  std::size_t ProbeFor(const Tuple& t) const;
  void Rehash(std::size_t new_cap);
  void EraseSlot(std::size_t i);

  std::size_t arity_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;  // slot count, power of two (0 = unallocated)
  std::unique_ptr<Value[]> slots_;  // cap_ * arity_ words
  bool has_empty_tuple_ = false;    // arity-0 relations hold at most ()
  mutable std::uint64_t probes_ = 0;
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_RELATION_H_
