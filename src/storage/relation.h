// A relation instance: a finite set of fixed-arity tuples.
#ifndef DYNCQ_STORAGE_RELATION_H_
#define DYNCQ_STORAGE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/tuple.h"
#include "util/hash.h"
#include "util/types.h"

namespace dyncq {

/// Set-semantics relation storage. Insert/Erase report whether the
/// database actually changed, which drives the no-op detection required
/// by every dynamic engine. No-op operations — inserting a present
/// tuple, deleting an absent one, any Contains — leave every data
/// structure untouched: capacity, metadata bytes, and probe_count are
/// all unchanged (a regression test pins this; the previous layout
/// could rehash on a duplicate insert at the load threshold).
///
/// Storage is a swiss-table: a metadata byte array (one byte per slot —
/// empty, tombstone, or a 7-bit fragment of the tuple's hash) alongside
/// a flat `cap_ * arity_` value array. Probing walks 16-byte metadata
/// groups (SSE2 where available, word-parallel byte tricks otherwise)
/// and pre-filters candidates on the hash fragment, so most probe steps
/// touch one metadata cache line and zero tuple words. Deletion leaves
/// a tombstone (unless the group still has an empty byte, in which case
/// the slot reverts to empty); tombstones are purged by an amortized
/// same-capacity rehash when occupancy hits the 7/8 growth threshold.
/// Occupancy (live + tombstones) never reaches capacity, so every probe
/// sequence terminates at a group containing an empty byte.
///
/// Unlike the previous layout, the table does not use Value 0 as an
/// in-slot empty sentinel — emptiness lives in the metadata byte. The
/// engine-wide reservation of Value 0 (util/types.h) is still enforced
/// on Insert because the core engine's ChildIndex depends on it, but
/// the storage layer itself no longer does.
class Relation {
 public:
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot count of the backing table (0 = unallocated). Exposed so
  /// tests can assert that no-op operations never grow or shrink it.
  std::size_t capacity() const { return cap_; }

  bool Contains(const Tuple& t) const;

  /// Returns true iff `t` was newly inserted.
  bool Insert(const Tuple& t);

  /// Returns true iff `t` was present.
  bool Erase(const Tuple& t);

  void Clear();
  void Reserve(std::size_t n);

  /// Hints the lines `t` probes into cache (batch pipelines look a few
  /// commands ahead to hide the set-lookup latency): the metadata group
  /// first — the only line most probes touch — then the first line of
  /// the group's tuple words, needed iff the hash-fragment filter finds
  /// a candidate (deeper lines are left to the hardware prefetcher).
  void Prefetch(const Tuple& t) const {
    if (cap_ == 0 || arity_ == 0) return;
    const std::size_t group = GroupFor(Hash(t));
    __builtin_prefetch(meta_.get() + group * kGroupWidth);
    __builtin_prefetch(slots_.get() + group * kGroupWidth * arity_);
  }

  /// Forward iterator over the stored tuples; materializes each tuple by
  /// value (range-for with `const Tuple&` binds it as usual). Iterators
  /// compare equal only when they refer to the same relation AND the
  /// same position (previously `a.begin() == b.end()` could hold for two
  /// different relations of equal capacity).
  class const_iterator {
   public:
    const_iterator(const Relation* r, std::size_t i) : r_(r), i_(i) {
      SkipEmpty();
    }
    Tuple operator*() const {
      if (r_->arity_ == 0) return Tuple();
      const Value* s = r_->slots_.get() + i_ * r_->arity_;
      return Tuple(s, s + r_->arity_);
    }
    const_iterator& operator++() {
      ++i_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return r_ == o.r_ && i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    void SkipEmpty() {
      if (r_->arity_ == 0) return;  // nullary: index counts () directly
      while (i_ < r_->cap_ && !MetaIsFull(r_->meta_[i_])) ++i_;
    }
    const Relation* r_;
    std::size_t i_;
  };

  /// Number of hash probes charged to database-changing operations
  /// (effective Insert/Erase). Batch pipelines use the delta of this
  /// counter to prove work was avoided (e.g. the UpdateBatch net-delta
  /// pre-pass cancelling inverse pairs before any probe, or the ordered
  /// ApplyBatch fold dropping superseded commands). No-op commands —
  /// re-inserting a present tuple, deleting an absent one, exactly what
  /// StreamOptions.noop_ratio generates — short-circuit before a probe
  /// is charged, as do read-only Contains lookups, so deliberate no-ops
  /// in a stream do not pollute the zero-probe accounting.
  std::uint64_t probe_count() const { return probes_; }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    if (arity_ == 0) return const_iterator(this, has_empty_tuple_ ? 1 : 0);
    return const_iterator(this, cap_);
  }

  std::string ToString(const std::string& name) const;

 private:
  // Metadata byte encoding: full slots carry the top 7 bits of the
  // tuple hash (high bit clear); the two control states set the high
  // bit so "full" and "empty-or-tombstone" separate on one bit.
  static constexpr std::uint8_t kMetaEmpty = 0x80;
  static constexpr std::uint8_t kMetaDeleted = 0xFF;
  static constexpr std::size_t kGroupWidth = 16;  // slots per probe group
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  static bool MetaIsFull(std::uint8_t m) { return (m & 0x80) == 0; }
  /// Hash fragment stored in the metadata byte (top 7 bits: independent
  /// of the group-index bits drawn from the bottom of the hash).
  static std::uint8_t H2(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 57);
  }
  std::size_t num_groups() const { return cap_ / kGroupWidth; }
  std::size_t GroupFor(std::uint64_t h) const {
    return static_cast<std::size_t>(h) & (num_groups() - 1);
  }
  /// Highest occupancy (live + tombstones) allowed at capacity `cap`
  /// before a rehash: 7/8, so a probe always finds an empty byte.
  static std::size_t MaxOccupancy(std::size_t cap) { return cap - cap / 8; }

  std::uint64_t Hash(const Tuple& t) const {
    return HashWords(t.data(), arity_);
  }
  bool SlotEquals(std::size_t i, const Value* key) const;
  /// Slot holding `t`, or kNoSlot.
  std::size_t FindSlot(const Tuple& t, std::uint64_t h) const;
  /// If `t` is present returns {its slot, true}; otherwise returns
  /// {the empty-or-tombstone slot an insert should use, false}.
  struct ProbeResult {
    std::size_t slot;
    bool found;
  };
  ProbeResult FindOrPrepareInsert(const Tuple& t, std::uint64_t h) const;
  /// First empty-or-tombstone slot of `h`'s probe sequence (rehash path:
  /// the key is known absent, so no tuple words are compared).
  std::size_t FindInsertSlot(std::uint64_t h) const;
  void Rehash(std::size_t new_cap);
  /// Capacity to grow to when occupancy hits the threshold: same
  /// capacity (tombstone purge) while live size stays under half,
  /// doubled otherwise. The purge is amortized: after it, at least
  /// 3/8 of the table is growth headroom.
  std::size_t GrownCapacity() const;

  std::size_t arity_;
  std::size_t size_ = 0;        // live tuples
  std::size_t tombstones_ = 0;  // deleted slots awaiting a purge rehash
  std::size_t cap_ = 0;  // slot count, power of two multiple of 16
  std::unique_ptr<std::uint8_t[]> meta_;  // cap_ metadata bytes
  std::unique_ptr<Value[]> slots_;        // cap_ * arity_ words
  bool has_empty_tuple_ = false;  // arity-0 relations hold at most ()
  // Not mutable: only effective (non-const) Insert/Erase charge probes.
  std::uint64_t probes_ = 0;
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_RELATION_H_
