#include "storage/database.h"

#include "util/check.h"

namespace dyncq {

Database::Database(const Schema& schema) : schema_(schema) {
  relations_.reserve(schema.NumRelations());
  for (const RelationSchema& rs : schema.relations()) {
    relations_.emplace_back(rs.arity);
  }
}

const Relation& Database::relation(RelId id) const {
  DYNCQ_CHECK_MSG(id < relations_.size(), "invalid relation id");
  return relations_[id];
}

Relation& Database::relation(RelId id) {
  DYNCQ_CHECK_MSG(id < relations_.size(), "invalid relation id");
  return relations_[id];
}

bool Database::Apply(const UpdateCmd& cmd) {
  return cmd.kind == UpdateKind::kInsert ? Insert(cmd.rel, cmd.tuple)
                                         : Delete(cmd.rel, cmd.tuple);
}

std::size_t Database::ApplyAll(const UpdateStream& stream) {
  std::size_t effective = 0;
  for (const UpdateCmd& cmd : stream) {
    if (Apply(cmd)) ++effective;
  }
  return effective;
}

bool Database::Insert(RelId rel, const Tuple& t) {
  if (!relation(rel).Insert(t)) return false;
  AdomAdd(t);
  return true;
}

bool Database::Delete(RelId rel, const Tuple& t) {
  if (!relation(rel).Erase(t)) return false;
  AdomRemove(t);
  return true;
}

std::size_t Database::NumTuples() const {
  std::size_t n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

std::size_t Database::SizeD() const {
  std::size_t n = schema_.NumRelations() + ActiveDomainSize();
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    n += relations_[i].arity() * relations_[i].size();
  }
  return n;
}

void Database::Clear() {
  for (Relation& r : relations_) r.Clear();
  adom_counts_.Clear();
}

void Database::AdomAdd(const Tuple& t) {
  for (Value v : t) ++adom_counts_.FindOrInsert(v);
}

void Database::AdomRemove(const Tuple& t) {
  for (Value v : t) {
    std::uint64_t* c = adom_counts_.Find(v);
    DYNCQ_DCHECK(c != nullptr && *c > 0);
    if (--*c == 0) adom_counts_.Erase(v);
  }
}

std::string Database::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out += "\n";
    out += relations_[i].ToString(schema_.name(static_cast<RelId>(i)));
  }
  return out;
}

}  // namespace dyncq
