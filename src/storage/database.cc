#include "storage/database.h"

#include "util/check.h"

namespace dyncq {

Database::Database(const Schema& schema) : schema_(schema) {
  relations_.reserve(schema.NumRelations());
  for (const RelationSchema& rs : schema.relations()) {
    relations_.emplace_back(rs.arity);
  }
}

const Relation& Database::relation(RelId id) const {
  DYNCQ_CHECK_MSG(id < relations_.size(), "invalid relation id");
  return relations_[id];
}

Relation& Database::relation(RelId id) {
  DYNCQ_CHECK_MSG(id < relations_.size(), "invalid relation id");
  return relations_[id];
}

bool Database::Apply(const UpdateCmd& cmd) {
  return cmd.kind == UpdateKind::kInsert ? Insert(cmd.rel, cmd.tuple)
                                         : Delete(cmd.rel, cmd.tuple);
}

std::size_t Database::ApplyAll(const UpdateStream& stream) {
  // Count inserts per relation so the hash tables are sized once up
  // front (an upper bound when the stream mixes deletes back in).
  std::vector<std::size_t> inserts(relations_.size(), 0);
  for (const UpdateCmd& cmd : stream) {
    if (cmd.kind == UpdateKind::kInsert && cmd.rel < inserts.size()) {
      ++inserts[cmd.rel];
    }
  }
  for (RelId r = 0; r < inserts.size(); ++r) {
    if (inserts[r] > 0) Reserve(r, inserts[r]);
  }

  std::size_t effective = 0;
  for (const UpdateCmd& cmd : stream) {
    if (Apply(cmd)) ++effective;
  }
  return effective;
}

void Database::Reserve(RelId rel, std::size_t n) {
  Relation& r = relation(rel);
  r.Reserve(r.size() + n);
  // Each inserted tuple contributes arity() candidate constants to the
  // active domain.
  util::MutexLock lock(&adom_->mu);
  adom_->counts.Reserve(adom_->counts.size() + n * r.arity());
}

bool Database::Insert(RelId rel, const Tuple& t) {
  if (!relation(rel).Insert(t)) return false;
  adom_->stale.store(true, std::memory_order_relaxed);
  return true;
}

bool Database::Delete(RelId rel, const Tuple& t) {
  if (!relation(rel).Erase(t)) return false;
  adom_->stale.store(true, std::memory_order_relaxed);
  return true;
}

std::size_t Database::NumTuples() const {
  std::size_t n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

std::size_t Database::SizeD() const {
  std::size_t n = schema_.NumRelations() + ActiveDomainSize();
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    n += relations_[i].arity() * relations_[i].size();
  }
  return n;
}

void Database::Clear() {
  for (Relation& r : relations_) r.Clear();
  util::MutexLock lock(&adom_->mu);
  adom_->counts.Clear();
  adom_->stale.store(false, std::memory_order_relaxed);
}

std::size_t Database::ActiveDomainSize() const {
  // The lock covers both the rebuild and the read: dropping it between
  // the two would let a concurrent reader's rebuild (after a writer
  // re-staled the counts) rehash the map under this reader's feet.
  util::MutexLock lock(&adom_->mu);
  EnsureAdomLocked();
  return adom_->counts.size();
}

bool Database::InActiveDomain(Value v) const {
  util::MutexLock lock(&adom_->mu);
  EnsureAdomLocked();
  return adom_->counts.Contains(v);
}

void Database::EnsureAdomLocked() const {
  // Two reader threads may both find the counts stale (e.g. two engines
  // sharing this database each sizing a bulk load from |adom|); without
  // the lock both would rebuild the map concurrently — a data race in a
  // const method. Writers don't take the lock: updates are externally
  // synchronized against reads and only set the relaxed stale flag.
  if (!adom_->stale.load(std::memory_order_relaxed)) return;
  adom_->counts.Clear();
  for (const Relation& r : relations_) {
    for (const Tuple& t : r) {
      for (Value v : t) ++adom_->counts.FindOrInsert(v);
    }
  }
  adom_->stale.store(false, std::memory_order_relaxed);
}

std::string Database::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out += "\n";
    out += relations_[i].ToString(schema_.name(static_cast<RelId>(i)));
  }
  return out;
}

}  // namespace dyncq
