#include "storage/io.h"

#include <cctype>
#include <istream>
#include <ostream>
#include <string>

#include "util/str.h"

namespace dyncq {

void WriteDatabase(const Database& db, std::ostream& os) {
  for (RelId r = 0; r < db.schema().NumRelations(); ++r) {
    const std::string& name = db.schema().name(r);
    for (const Tuple& t : db.relation(r)) {
      os << name << TupleToString(t) << "\n";
    }
  }
}

void WriteUpdateStream(const UpdateStream& stream, const Schema& schema,
                       std::ostream& os) {
  for (const UpdateCmd& cmd : stream) {
    os << (cmd.kind == UpdateKind::kInsert ? "+ " : "- ")
       << schema.name(cmd.rel) << TupleToString(cmd.tuple) << "\n";
  }
}

Result<UpdateCmd> ParseUpdateLine(std::string_view line,
                                  const Schema& schema) {
  std::string_view s = Trim(line);
  UpdateKind kind = UpdateKind::kInsert;
  if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
    kind = s[0] == '+' ? UpdateKind::kInsert : UpdateKind::kDelete;
    s = Trim(s.substr(1));
  }

  std::size_t lparen = s.find('(');
  if (lparen == std::string_view::npos || s.empty() || s.back() != ')') {
    return Result<UpdateCmd>::Error(
        "malformed update line: " + std::string(line));
  }
  std::string rel_name(Trim(s.substr(0, lparen)));
  RelId rel = schema.FindRelation(rel_name);
  if (rel == kInvalidRel) {
    return Result<UpdateCmd>::Error("unknown relation '" + rel_name + "'");
  }

  Tuple tuple;
  std::string_view body = s.substr(lparen + 1, s.size() - lparen - 2);
  for (const std::string& piece : Split(body, ',')) {
    std::string_view p = Trim(piece);
    if (p.empty()) {
      return Result<UpdateCmd>::Error(
          "empty value in update line: " + std::string(line));
    }
    Value v = 0;
    for (char c : p) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Result<UpdateCmd>::Error(
            "non-numeric value '" + std::string(p) + "'");
      }
      v = v * 10 + static_cast<Value>(c - '0');
    }
    if (v == 0) {
      return Result<UpdateCmd>::Error("values must be >= 1 (0 reserved)");
    }
    tuple.push_back(v);
  }
  if (tuple.size() != schema.arity(rel)) {
    return Result<UpdateCmd>::Error(
        StrCat("arity mismatch for ", rel_name, ": expected ",
               schema.arity(rel), ", got ", tuple.size()));
  }
  return UpdateCmd{kind, rel, std::move(tuple)};
}

Result<UpdateStream> ReadUpdateStream(std::istream& is,
                                      const Schema& schema) {
  UpdateStream out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view s = Trim(line);
    if (s.empty() || s[0] == '#') continue;
    auto cmd = ParseUpdateLine(s, schema);
    if (!cmd.ok()) {
      return Result<UpdateStream>::Error(
          StrCat("line ", line_no, ": ", cmd.error()));
    }
    out.push_back(std::move(cmd.value()));
  }
  return out;
}

}  // namespace dyncq
