// String dictionary: interning between external string constants and the
// dense numeric domain used by the engines. Used by the examples to keep
// the library core purely numeric (paper: dom = N>=1).
#ifndef DYNCQ_STORAGE_DICTIONARY_H_
#define DYNCQ_STORAGE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"
#include "util/open_hash_map.h"
#include "util/types.h"

namespace dyncq {

class Dictionary {
 public:
  /// Returns the code for `s`, interning it if new. Codes start at 1
  /// (0 is the reserved sentinel).
  Value Intern(std::string_view s);

  /// Returns the code for `s`, or 0 if not interned.
  Value Lookup(std::string_view s) const;

  /// Inverse mapping. Requires a valid code.
  const std::string& Spell(Value code) const;

  std::size_t size() const { return spellings_.size(); }

 private:
  OpenHashMap<std::string, Value, StringHash> codes_;
  std::vector<std::string> spellings_;
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_DICTIONARY_H_
