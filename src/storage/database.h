// A relational database instance over a fixed schema, with active-domain
// tracking and single-tuple updates (paper §2).
#ifndef DYNCQ_STORAGE_DATABASE_H_
#define DYNCQ_STORAGE_DATABASE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cq/schema.h"
#include "storage/relation.h"
#include "storage/update.h"
#include "util/hash.h"
#include "util/open_hash_map.h"

namespace dyncq {

class Database {
 public:
  explicit Database(const Schema& schema);

  const Schema& schema() const { return schema_; }

  const Relation& relation(RelId id) const;
  Relation& relation(RelId id);

  /// Applies an update command. Returns true iff the database changed
  /// (insert of a present tuple / delete of an absent tuple are no-ops).
  bool Apply(const UpdateCmd& cmd);


  /// Applies a whole stream; returns the number of effective updates.
  /// Bulk-load path: pre-sizes the relations and the active-domain map
  /// from the stream's composition so the replay never rehashes (paper
  /// §6.4 linear-time preprocessing). The BatchOptions overload keeps
  /// the storage layer callable from the sharded batch plumbing: each
  /// relation is one shared open-addressing table, so the replay here is
  /// sequential regardless of `opts.shards` (only the engines' phase-A
  /// descents shard — see core::Engine::ApplyBatch).
  std::size_t ApplyAll(const UpdateStream& stream);
  std::size_t ApplyAll(const UpdateStream& stream, const BatchOptions& opts) {
    (void)opts.shards;
    return ApplyAll(stream);
  }

  /// Pre-sizes relation `rel` (and the active-domain map) for `n` more
  /// tuples.
  void Reserve(RelId rel, std::size_t n);

  /// Hints the lines `cmd` will probe into cache (the relation's
  /// metadata group first, then the first line of its tuple words — see
  /// Relation::Prefetch); used by batch loops to look ahead.
  void Prefetch(const UpdateCmd& cmd) const {
    relations_[cmd.rel].Prefetch(cmd.tuple);
  }

  bool Insert(RelId rel, const Tuple& t);
  bool Delete(RelId rel, const Tuple& t);

  /// |D|: total number of stored tuples.
  std::size_t NumTuples() const;

  /// ||D||: |schema| + |adom| + sum_R ar(R)*|R^D| (paper §2, Sizes).
  std::size_t SizeD() const;

  /// Total hash probes across all relations (see Relation::probe_count).
  std::uint64_t TotalRelationProbes() const {
    std::uint64_t total = 0;
    for (const Relation& r : relations_) total += r.probe_count();
    return total;
  }

  /// n = |adom(D)|: number of distinct constants in the database.
  /// Maintained lazily: updates only mark the cached reference counts
  /// stale (keeping per-update hash work off the streaming hot path) and
  /// the first adom query after a change rebuilds them in O(||D||).
  /// Safe for concurrent READERS (the rebuild is serialized internally;
  /// see EnsureAdom) — multiple engines sharing one database may size
  /// their preprocessing from |adom| at once. Writes still require the
  /// usual external synchronization against reads.
  std::size_t ActiveDomainSize() const {
    EnsureAdom();
    return adom_counts_.size();
  }

  /// True if `v` occurs somewhere in the database.
  bool InActiveDomain(Value v) const {
    EnsureAdom();
    return adom_counts_.Contains(v);
  }

  void Clear();

  std::string ToString() const;

 private:
  void EnsureAdom() const;

  const Schema& schema_;
  std::vector<Relation> relations_;
  // Reference counts: value -> number of tuple positions holding it.
  // Rebuilt on demand (see ActiveDomainSize). The mutex serializes the
  // const-method lazy rebuild between concurrent readers; writers only
  // flip adom_stale_ and are externally synchronized against reads.
  // Heap-held so Database stays movable (moves are externally
  // synchronized like writes).
  std::unique_ptr<std::mutex> adom_mu_ = std::make_unique<std::mutex>();
  mutable OpenHashMap<Value, std::uint64_t, U64Hash> adom_counts_;
  mutable bool adom_stale_ = false;
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_DATABASE_H_
