// A relational database instance over a fixed schema, with active-domain
// tracking and single-tuple updates (paper §2).
#ifndef DYNCQ_STORAGE_DATABASE_H_
#define DYNCQ_STORAGE_DATABASE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/schema.h"
#include "storage/relation.h"
#include "storage/update.h"
#include "util/hash.h"
#include "util/open_hash_map.h"

namespace dyncq {

class Database {
 public:
  explicit Database(const Schema& schema);

  const Schema& schema() const { return schema_; }

  const Relation& relation(RelId id) const;
  Relation& relation(RelId id);

  /// Applies an update command. Returns true iff the database changed
  /// (insert of a present tuple / delete of an absent tuple are no-ops).
  bool Apply(const UpdateCmd& cmd);

  /// Applies a whole stream; returns the number of effective updates.
  std::size_t ApplyAll(const UpdateStream& stream);

  bool Insert(RelId rel, const Tuple& t);
  bool Delete(RelId rel, const Tuple& t);

  /// |D|: total number of stored tuples.
  std::size_t NumTuples() const;

  /// ||D||: |schema| + |adom| + sum_R ar(R)*|R^D| (paper §2, Sizes).
  std::size_t SizeD() const;

  /// n = |adom(D)|: number of distinct constants in the database.
  std::size_t ActiveDomainSize() const { return adom_counts_.size(); }

  /// True if `v` occurs somewhere in the database.
  bool InActiveDomain(Value v) const { return adom_counts_.Contains(v); }

  void Clear();

  std::string ToString() const;

 private:
  void AdomAdd(const Tuple& t);
  void AdomRemove(const Tuple& t);

  const Schema& schema_;
  std::vector<Relation> relations_;
  // Reference counts: value -> number of tuple positions holding it.
  OpenHashMap<Value, std::uint64_t, U64Hash> adom_counts_;
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_DATABASE_H_
