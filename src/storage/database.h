// A relational database instance over a fixed schema, with active-domain
// tracking and single-tuple updates (paper §2).
#ifndef DYNCQ_STORAGE_DATABASE_H_
#define DYNCQ_STORAGE_DATABASE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cq/schema.h"
#include "storage/relation.h"
#include "storage/update.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/open_hash_map.h"
#include "util/thread_annotations.h"

namespace dyncq {

class Database {
 public:
  explicit Database(const Schema& schema);

  const Schema& schema() const { return schema_; }

  const Relation& relation(RelId id) const;
  Relation& relation(RelId id);

  /// Applies an update command. Returns true iff the database changed
  /// (insert of a present tuple / delete of an absent tuple are no-ops).
  bool Apply(const UpdateCmd& cmd);


  /// Applies a whole stream; returns the number of effective updates.
  /// Bulk-load path: pre-sizes the relations and the active-domain map
  /// from the stream's composition so the replay never rehashes (paper
  /// §6.4 linear-time preprocessing). The BatchOptions overload keeps
  /// the storage layer callable from the sharded batch plumbing: each
  /// relation is one shared open-addressing table, so the replay here is
  /// sequential regardless of `opts.shards` (only the engines' phase-A
  /// descents shard — see core::Engine::ApplyBatch).
  std::size_t ApplyAll(const UpdateStream& stream);
  std::size_t ApplyAll(const UpdateStream& stream, const BatchOptions& opts) {
    (void)opts.shards;
    return ApplyAll(stream);
  }

  /// Pre-sizes relation `rel` (and the active-domain map) for `n` more
  /// tuples.
  void Reserve(RelId rel, std::size_t n);

  /// Hints the lines `cmd` will probe into cache (the relation's
  /// metadata group first, then the first line of its tuple words — see
  /// Relation::Prefetch); used by batch loops to look ahead.
  void Prefetch(const UpdateCmd& cmd) const {
    relations_[cmd.rel].Prefetch(cmd.tuple);
  }

  bool Insert(RelId rel, const Tuple& t);
  bool Delete(RelId rel, const Tuple& t);

  /// |D|: total number of stored tuples.
  std::size_t NumTuples() const;

  /// ||D||: |schema| + |adom| + sum_R ar(R)*|R^D| (paper §2, Sizes).
  std::size_t SizeD() const;

  /// Total hash probes across all relations (see Relation::probe_count).
  std::uint64_t TotalRelationProbes() const {
    std::uint64_t total = 0;
    for (const Relation& r : relations_) total += r.probe_count();
    return total;
  }

  /// n = |adom(D)|: number of distinct constants in the database.
  /// Maintained lazily: updates only mark the cached reference counts
  /// stale (keeping per-update hash work off the streaming hot path) and
  /// the first adom query after a change rebuilds them in O(||D||).
  /// Safe for concurrent READERS (rebuild and read both run under the
  /// adom mutex; see EnsureAdomLocked) — multiple engines sharing one
  /// database may size their preprocessing from |adom| at once. Writes
  /// still require the usual external synchronization against reads.
  std::size_t ActiveDomainSize() const;

  /// True if `v` occurs somewhere in the database.
  bool InActiveDomain(Value v) const;

  void Clear();

  std::string ToString() const;

 private:
  // Active-domain reference counts (value -> number of tuple positions
  // holding it), rebuilt on demand — see ActiveDomainSize. The mutex
  // serializes the const-method lazy rebuild between concurrent readers
  // AND covers every read of the rebuilt map: the annotation sweep
  // caught the previous shape (rebuild locked, the .size()/.Contains()
  // read after it unlocked) as a read outside the capability. The whole
  // state lives in one heap-held struct so Database stays movable and
  // the GUARDED_BY names a member of the same struct (moves are
  // externally synchronized like writes).
  struct AdomState {
    util::Mutex mu;
    OpenHashMap<Value, std::uint64_t, U64Hash> counts DYNCQ_GUARDED_BY(mu);
    // Write-path gate, deliberately NOT guarded: Insert/Delete are the
    // engine's per-update hot path (E5-gated at tens of ns) and must not
    // take a mutex — they flip this flag with a relaxed store. Writers
    // are externally synchronized against adom readers, so the only
    // concurrency on the flag is reader-vs-reader under `mu`, where
    // relaxed loads suffice.
    std::atomic<bool> stale{false};
  };

  /// Rebuilds `adom_->counts` if stale. Callers keep holding the lock
  /// across their subsequent read of the map.
  void EnsureAdomLocked() const DYNCQ_REQUIRES(adom_->mu);

  const Schema& schema_;
  std::vector<Relation> relations_;
  std::unique_ptr<AdomState> adom_ = std::make_unique<AdomState>();
};

}  // namespace dyncq

#endif  // DYNCQ_STORAGE_DATABASE_H_
