#include "storage/dictionary.h"

#include "util/check.h"

namespace dyncq {

Value Dictionary::Intern(std::string_view s) {
  std::string key(s);
  auto [slot, inserted] = codes_.Insert(key, 0);
  if (inserted) {
    spellings_.push_back(key);
    *slot = static_cast<Value>(spellings_.size());  // codes start at 1
  }
  return *slot;
}

Value Dictionary::Lookup(std::string_view s) const {
  const Value* v = codes_.Find(std::string(s));
  return v != nullptr ? *v : 0;
}

const std::string& Dictionary::Spell(Value code) const {
  DYNCQ_CHECK_MSG(code >= 1 && code <= spellings_.size(),
                  "invalid dictionary code");
  return spellings_[static_cast<std::size_t>(code - 1)];
}

}  // namespace dyncq
