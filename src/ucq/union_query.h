// Unions of conjunctive queries (UCQs) — the extension the paper names
// as its next step (§7: "characterising the complexity of more
// expressive queries such as ... unions of conjunctive queries").
//
// This module provides the straightforward upper-bound machinery on top
// of Theorem 3.2:
//  * answering ⋃ϕi: OR over per-disjunct engines — O(1) when every
//    disjunct ('s core) is q-hierarchical;
//  * counting |⋃ϕi(D)|: inclusion–exclusion over head-unified
//    conjunctions, |⋃| = Σ_{∅≠S} (-1)^{|S|+1} |(∧S)(D)| — O(1) per count
//    when every conjunction's core is q-hierarchical (each ∧S runs on
//    its own maintenance engine);
//  * enumeration: disjunct-by-disjunct with duplicate suppression
//    (amortized constant per produced candidate; not the constant-delay
//    guarantee of Theorem 3.2 — a full UCQ dichotomy is future work, as
//    in the paper).
#ifndef DYNCQ_UCQ_UNION_QUERY_H_
#define DYNCQ_UCQ_UNION_QUERY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/auto_engine.h"
#include "core/engine_iface.h"
#include "cq/query.h"
#include "util/result.h"

namespace dyncq::ucq {

/// A union of CQs with identical arity over one shared schema.
class UnionQuery {
 public:
  /// All disjuncts must share the same Schema object and arity; at most
  /// 6 disjuncts (inclusion–exclusion builds 2^d - 1 engines).
  [[nodiscard]] static Result<UnionQuery> Create(std::vector<Query> disjuncts);

  const std::vector<Query>& disjuncts() const { return disjuncts_; }
  std::size_t Arity() const { return disjuncts_[0].Arity(); }
  const Schema& schema() const { return disjuncts_[0].schema(); }
  const std::shared_ptr<const Schema>& schema_ptr() const {
    return disjuncts_[0].schema_ptr();
  }

  std::string ToString() const;

 private:
  explicit UnionQuery(std::vector<Query> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  std::vector<Query> disjuncts_;
};

/// Head-unified conjunction: a query equivalent to "ā ∈ a(D) and
/// ā ∈ b(D)". b's head variables are substituted by a's; b's quantified
/// variables are renamed apart.
Query ConjoinOnHead(const Query& a, const Query& b);

/// Dynamic maintenance of a UCQ (see the header comment for the
/// guarantees per routine).
class UnionEngine {
 public:
  explicit UnionEngine(UnionQuery uq);

  const UnionQuery& query() const { return uq_; }

  /// Applies the update to every underlying engine. Returns true iff the
  /// database changed.
  bool Apply(const UpdateCmd& cmd);

  /// |⋃ϕi(D)| via inclusion–exclusion (O(2^d) engine reads).
  Weight Count();

  /// ⋃ϕi(D) ≠ ∅ (OR over disjunct engines).
  bool Answer();

  /// Enumerates the union without duplicates. Invalidation of any
  /// disjunct's cursor propagates as CursorStatus::kInvalidated. Reset
  /// after an update rebuilds the disjunct cursors against the current
  /// revision (one rebuild attempt; a cursor that cannot be rebuilt —
  /// the engines moved again mid-reset — goes permanently dead and
  /// reports kInvalidated from then on).
  std::unique_ptr<Cursor> NewCursor();

  /// One fresh cursor per disjunct, in disjunct order, no dedup wrapper.
  /// Building block of NewCursor and of UnionCursor's reset-rebuild.
  std::vector<std::unique_ptr<Cursor>> NewDisjunctCursors();

  /// Revision of the union result (advanced by every effective update).
  Revision revision() const { return Revision{epoch_}; }

  // ---- epoch-pinned snapshots (materialize-on-pin) ----
  //
  // UnionEngine is not a DynamicQueryEngine, so it carries its own small
  // registry. A pin drains one deduplicated union cursor into a shared
  // vector; snapshot cursors co-own that vector, so they stay valid
  // after UnpinEpoch and never report kInvalidated.

  /// Pins the current epoch (materializing the union result) and returns
  /// it. Repeated pins of one epoch nest and share the materialization.
  [[nodiscard]] Result<std::uint64_t> PinEpoch();

  /// Releases one pin. Unpinning an epoch that is not pinned is a typed
  /// error.
  [[nodiscard]] Status UnpinEpoch(std::uint64_t epoch);

  /// Cursor over the result as of pinned `epoch` (errors if not pinned).
  [[nodiscard]] Result<std::unique_ptr<Cursor>> NewSnapshotCursor(std::uint64_t epoch);

  std::size_t num_pinned_epochs() const { return pinned_.size(); }

  /// Strategy used for the subset-conjunction engine (diagnostics).
  core::EngineStrategy SubsetStrategy(std::size_t subset_mask) const;

 private:
  struct PinnedResult {
    std::uint32_t pins = 0;
    std::shared_ptr<const std::vector<Tuple>> tuples;
  };

  UnionQuery uq_;
  // engines_[mask - 1] maintains the conjunction of the disjuncts in
  // `mask` (singletons included: mask with one bit = the disjunct).
  std::vector<core::EngineChoice> engines_;
  std::uint64_t epoch_ = 0;
  std::map<std::uint64_t, PinnedResult> pinned_;
};

}  // namespace dyncq::ucq

#endif  // DYNCQ_UCQ_UNION_QUERY_H_
