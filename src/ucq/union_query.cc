#include "ucq/union_query.h"

#include <bit>
#include <new>

#include "util/check.h"
#include "util/hash.h"
#include "util/open_hash_map.h"
#include "util/str.h"

namespace dyncq::ucq {

Result<UnionQuery> UnionQuery::Create(std::vector<Query> disjuncts) {
  if (disjuncts.empty()) {
    return Result<UnionQuery>::Error("a UCQ needs at least one disjunct");
  }
  if (disjuncts.size() > 6) {
    return Result<UnionQuery>::Error(
        "at most 6 disjuncts supported (2^d - 1 subset engines)");
  }
  const Schema* schema = &disjuncts[0].schema();
  const std::size_t arity = disjuncts[0].Arity();
  for (const Query& q : disjuncts) {
    if (&q.schema() != schema) {
      return Result<UnionQuery>::Error(
          "all disjuncts must share one Schema object");
    }
    if (q.Arity() != arity) {
      return Result<UnionQuery>::Error("disjunct arities differ");
    }
  }
  return UnionQuery(std::move(disjuncts));
}

std::string UnionQuery::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts_.size());
  for (const Query& q : disjuncts_) parts.push_back(q.ToString());
  return Join(parts, "  UNION  ");
}

Query ConjoinOnHead(const Query& a, const Query& b) {
  DYNCQ_CHECK_MSG(a.Arity() == b.Arity(), "arity mismatch in conjunction");
  QueryBuilder builder(a.schema_ptr());
  builder.SetName(a.name() + "_and_" + b.name());

  // Copy a verbatim (variable names preserved).
  std::vector<VarId> a_map(a.NumVars());
  for (VarId v = 0; v < a.NumVars(); ++v) {
    a_map[v] = builder.Var(a.VarName(v));
  }
  for (const Atom& atom : a.atoms()) {
    std::vector<Term> args;
    for (const Term& t : atom.args) {
      args.push_back(t.IsVar() ? Term::Var(a_map[t.var]) : t);
    }
    builder.AddAtom(atom.rel, std::move(args));
  }

  // Map b: head position i -> a's head variable i; everything else gets a
  // fresh name (prefixed to avoid collisions with a's variables).
  std::vector<VarId> b_map(b.NumVars(), kInvalidVar);
  for (std::size_t i = 0; i < b.head().size(); ++i) {
    b_map[b.head()[i]] = a_map[a.head()[i]];
  }
  for (VarId v = 0; v < b.NumVars(); ++v) {
    if (b_map[v] == kInvalidVar) {
      b_map[v] = builder.Var("r$" + b.name() + "$" + b.VarName(v));
    }
  }
  for (const Atom& atom : b.atoms()) {
    std::vector<Term> args;
    for (const Term& t : atom.args) {
      args.push_back(t.IsVar() ? Term::Var(b_map[t.var]) : t);
    }
    builder.AddAtom(atom.rel, std::move(args));
  }

  std::vector<VarId> head;
  for (VarId v : a.head()) head.push_back(a_map[v]);
  builder.SetHead(head);
  Result<Query> q = builder.Build();
  DYNCQ_CHECK_MSG(q.ok(), "conjunction build failed: " + q.error());
  return q.value();
}

UnionEngine::UnionEngine(UnionQuery uq) : uq_(std::move(uq)) {
  const std::size_t d = uq_.disjuncts().size();
  const std::size_t subsets = (std::size_t{1} << d) - 1;
  engines_.reserve(subsets);
  for (std::size_t mask = 1; mask <= subsets; ++mask) {
    // Conjunction of the disjuncts selected by `mask`.
    Query conj = uq_.disjuncts()[static_cast<std::size_t>(
        std::countr_zero(mask))];
    for (std::size_t i = static_cast<std::size_t>(std::countr_zero(mask)) +
                         1;
         i < d; ++i) {
      if (mask & (std::size_t{1} << i)) {
        conj = ConjoinOnHead(conj, uq_.disjuncts()[i]);
      }
    }
    engines_.push_back(core::CreateMaintainableEngine(conj));
  }
}

core::EngineStrategy UnionEngine::SubsetStrategy(
    std::size_t subset_mask) const {
  DYNCQ_CHECK(subset_mask >= 1 && subset_mask <= engines_.size());
  return engines_[subset_mask - 1].strategy;
}

bool UnionEngine::Apply(const UpdateCmd& cmd) {
  bool changed = false;
  for (auto& choice : engines_) {
    changed = choice.engine->Apply(cmd) || changed;
  }
  if (changed) ++epoch_;
  return changed;
}

Weight UnionEngine::Count() {
  // Inclusion–exclusion over subset conjunctions. Done in signed 128-bit
  // (intermediate sums are bounded by 2^d * max subset count).
  __int128 total = 0;
  for (std::size_t mask = 1; mask <= engines_.size(); ++mask) {
    Weight c = engines_[mask - 1].engine->Count();
    DYNCQ_CHECK_MSG(
        c <= static_cast<Weight>(~static_cast<Weight>(0) >> 8),
        "union count overflow");
    int bits = std::popcount(mask);
    total += (bits % 2 == 1) ? static_cast<__int128>(c)
                             : -static_cast<__int128>(c);
  }
  DYNCQ_CHECK_MSG(total >= 0, "inclusion-exclusion went negative");
  return static_cast<Weight>(total);
}

bool UnionEngine::Answer() {
  const std::size_t d = uq_.disjuncts().size();
  for (std::size_t i = 0; i < d; ++i) {
    if (engines_[(std::size_t{1} << i) - 1].engine->Answer()) return true;
  }
  return false;
}

namespace {

/// Streams disjunct cursors in order, suppressing duplicates with a
/// hash set of emitted tuples. Invalidation of any sub-cursor propagates
/// from Next; Reset instead rebuilds the disjunct cursors against the
/// owner's current revision (the old cursors can never become valid
/// again — each disjunct engine has its own revision counter, so
/// resetting stale sub-cursors one by one could neither succeed nor
/// leave a consistent mix). One rebuild is attempted; if even the fresh
/// cursors report stale (an update raced the reset, violating the
/// single-writer contract), the cursor goes permanently dead instead of
/// retrying forever or tearing half its state.
class UnionCursor final : public Cursor {
 public:
  UnionCursor(UnionEngine* owner, std::vector<std::unique_ptr<Cursor>> subs)
      : owner_(owner), subs_(std::move(subs)) {}

  CursorStatus Next(Tuple* out) override {
    if (dead_) return CursorStatus::kInvalidated;
    while (current_ < subs_.size()) {
      CursorStatus s = subs_[current_]->Next(out);
      if (s == CursorStatus::kInvalidated) return s;
      if (s == CursorStatus::kEnd) {
        ++current_;
        continue;
      }
      if (seen_.Insert(*out)) return CursorStatus::kOk;
    }
    return CursorStatus::kEnd;
  }

  CursorStatus Reset() override {
    if (dead_) return CursorStatus::kInvalidated;
    bool stale = false;
    for (auto& s : subs_) {
      if (s->Reset() == CursorStatus::kInvalidated) {
        stale = true;
        break;
      }
    }
    if (stale) {
      // Rebuild once: fresh cursors at the engines' current revisions.
      subs_ = owner_->NewDisjunctCursors();
      for (auto& s : subs_) {
        if (s->Reset() == CursorStatus::kInvalidated) {
          dead_ = true;  // raced by a writer mid-reset: stay dead
          return CursorStatus::kInvalidated;
        }
      }
    }
    // seen_/current_ change only on success, so a failed reset leaves
    // the cursor exactly as dead as it reported.
    seen_.Clear();
    current_ = 0;
    return CursorStatus::kOk;
  }

 private:
  UnionEngine* owner_;
  std::vector<std::unique_ptr<Cursor>> subs_;
  OpenHashSet<Tuple, TupleHash> seen_;
  std::size_t current_ = 0;
  bool dead_ = false;
};

}  // namespace

std::vector<std::unique_ptr<Cursor>> UnionEngine::NewDisjunctCursors() {
  const std::size_t d = uq_.disjuncts().size();
  std::vector<std::unique_ptr<Cursor>> subs;
  subs.reserve(d);
  for (std::size_t i = 0; i < d; ++i) {
    subs.push_back(
        engines_[(std::size_t{1} << i) - 1].engine->NewCursor());
  }
  return subs;
}

std::unique_ptr<Cursor> UnionEngine::NewCursor() {
  return std::make_unique<UnionCursor>(this, NewDisjunctCursors());
}

Result<std::uint64_t> UnionEngine::PinEpoch() {
  using R = Result<std::uint64_t>;
  const std::uint64_t epoch = epoch_;
  auto it = pinned_.find(epoch);
  if (it != pinned_.end()) {
    ++it->second.pins;
    return epoch;
  }
  // Materialize-on-pin: drain one deduplicated union cursor. On any
  // failure nothing is registered.
  try {
    auto tuples = std::make_shared<std::vector<Tuple>>();
    auto cursor = NewCursor();
    Tuple t;
    CursorStatus s;
    while ((s = cursor->Next(&t)) == CursorStatus::kOk) {
      tuples->push_back(t);
    }
    if (s == CursorStatus::kInvalidated) {
      return R::Error(
          "PinEpoch: result changed while materializing the snapshot "
          "(pins must be synchronized with writes)");
    }
    PinnedResult& entry = pinned_[epoch];
    entry.pins = 1;
    entry.tuples = std::move(tuples);
  } catch (const std::bad_alloc&) {
    return R::Error("PinEpoch: allocation failed while materializing");
  }
  return epoch;
}

Status UnionEngine::UnpinEpoch(std::uint64_t epoch) {
  auto it = pinned_.find(epoch);
  if (it == pinned_.end() || it->second.pins == 0) {
    return Status::Error("UnpinEpoch: epoch " + std::to_string(epoch) +
                         " is not pinned");
  }
  // Snapshot cursors co-own the materialized vector, so erasing the
  // registry entry never invalidates them.
  if (--it->second.pins == 0) pinned_.erase(it);
  return Status::Ok();
}

Result<std::unique_ptr<Cursor>> UnionEngine::NewSnapshotCursor(
    std::uint64_t epoch) {
  using R = Result<std::unique_ptr<Cursor>>;
  auto it = pinned_.find(epoch);
  if (it == pinned_.end()) {
    return R::Error("NewSnapshotCursor: epoch " + std::to_string(epoch) +
                    " is not pinned");
  }
  return R(NewVectorSnapshotCursor(it->second.tuples));
}

}  // namespace dyncq::ucq
