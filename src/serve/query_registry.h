// Multi-query serving: one delta stream fanned out to N standing queries.
//
// A QueryRegistry owns ONE shared Database and N registered standing
// queries. Three mechanisms keep per-delta cost proportional to the
// queries a delta can actually affect, not to the number registered:
//
//  * Routing index — registration extracts the relations the maintained
//    query's atoms touch and subscribes its engine in a RelId-keyed
//    postings list; ApplyDelta/ApplyBatch update storage once and walk
//    only the touched relations' subscribers.
//  * Shared storage — q-hierarchical engines run in shared-storage mode
//    (core::Engine::CreateShared): they read the registry's Database
//    and keep only their item forests private, so base tuples are
//    stored once regardless of how many queries join over them.
//    Non-q-hierarchical fallbacks (delta-IVM) keep a private projection
//    of their relations.
//  * Structural dedup — queries are canonicalized (cq/canonical.h:
//    existential renaming + atom reordering) and identical shapes share
//    one refcounted engine; Register returns a QueryHandle, whose
//    destruction (or Release) decrements the refcount and tears the
//    engine down at zero.
//
// Per-delta cost model: one Database::Apply (a no-op filters out ALL
// notification work), plus per affected subscriber engine either the
// O(1) q-hierarchical update (Theorem 3.2) or the fallback's delta
// step. Registered-but-unaffected queries cost nothing.
//
// Threading contract: same single-writer discipline as the engines.
// Register/Unregister/ApplyDelta/ApplyBatch are writer-side and must be
// externally synchronized; handle reads (Count/cursors/pinned
// snapshots) follow the DynamicQueryEngine contract of the backing
// engine. Handles must not outlive their registry. The registry mutex
// `mu_` makes that contract compiler-checkable (every access to the
// routing/dedup state must hold it) and additionally makes the counter
// introspection (NumRegistered/NumEngines/stats) safe against a
// concurrent writer. Lock hierarchy: mu_ is held while driving engine
// write prologues, which take each engine's snap_mu_ and then the item
// pools' retire_mu_ — never the reverse.
#ifndef DYNCQ_SERVE_QUERY_REGISTRY_H_
#define DYNCQ_SERVE_QUERY_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/auto_engine.h"
#include "core/engine.h"
#include "cq/query.h"
#include "storage/database.h"
#include "storage/update.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace dyncq::serve {

struct RegistryOptions {
  /// Share one engine among structurally identical queries. Disabling
  /// gives every registration a private engine (the bench's baseline
  /// for measuring what dedup saves).
  bool dedup = true;
};

/// Writer-side counters (telemetry / bench hooks).
struct RegistryStats {
  /// Effective (database-changing) deltas applied.
  std::uint64_t deltas_applied = 0;
  /// Engine notifications delivered across all effective deltas; the
  /// ratio to deltas_applied is the measured mean affected-engine
  /// fanout.
  std::uint64_t notifications = 0;
};

class QueryHandle;

class QueryRegistry {
 public:
  /// The schema must be frozen: the shared Database is sized at
  /// construction, so relations added to `*schema` afterwards are
  /// invisible (and unregisterable).
  explicit QueryRegistry(std::shared_ptr<const Schema> schema,
                         RegistryOptions opts = {});
  ~QueryRegistry();

  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Registers a standing query and returns its handle. The query must
  /// be built against the registry's schema (same object, or a prefix
  /// of it — RelIds must agree). Runs the engine dichotomy
  /// (core/auto_engine.h); with dedup enabled a structurally identical
  /// earlier registration is joined instead of building a new engine.
  /// If the database already holds tuples the new engine is built from
  /// them (the preprocessing phase).
  [[nodiscard]] Result<QueryHandle> Register(const Query& q);

  // ---- the one write stream ----

  /// Applies one base-table update to the shared database and fans the
  /// effective delta out to the affected engines. Returns true iff the
  /// database changed; no-ops notify nobody.
  bool ApplyDelta(const UpdateCmd& cmd);

  /// Ordered batch replay: folds superseded commands (BatchFolder),
  /// applies the survivors to storage, and hands each affected engine
  /// its effective deltas through the batch pipeline (one revision bump
  /// per engine per batch). Returns the number of effective commands.
  std::size_t ApplyBatch(std::span<const UpdateCmd> cmds);
  std::size_t ApplyAll(const UpdateStream& stream) {
    return ApplyBatch(std::span<const UpdateCmd>(stream));
  }

  // ---- introspection ----

  const Schema& schema() const { return *schema_; }
  const Database& db() const { return db_; }

  /// Live registrations (handles not yet released).
  std::size_t NumRegistered() const {
    util::MutexLock lock(&mu_);
    return registered_;
  }
  /// Distinct backing engines (== NumRegistered() when dedup is off or
  /// every shape is unique).
  std::size_t NumEngines() const {
    util::MutexLock lock(&mu_);
    return entries_.size();
  }
  /// Returned BY VALUE: the annotation sweep caught the previous
  /// const-reference return — a reference into mutex-guarded state that
  /// the caller would read after the lock (had there been one) dropped.
  RegistryStats stats() const {
    util::MutexLock lock(&mu_);
    return stats_;
  }

  /// Sum of RetiredBlocks() over shared-storage engines (leak checks).
  std::size_t RetiredBlocks() const;

 private:
  friend class QueryHandle;

  struct Entry {
    explicit Entry(const Query& q) : query(q) {}

    std::string key;
    Query query;  // the registered query (first registrant's copy)
    std::unique_ptr<DynamicQueryEngine> engine;
    // Non-null iff `engine` is a shared-storage core::Engine — the fast
    // path driven via PrepareSharedWrite/ApplySharedDelta(s). Fallback
    // engines (private storage) are driven through plain Apply.
    core::Engine* shared = nullptr;
    core::EngineStrategy strategy = core::EngineStrategy::kDeltaIvm;
    std::vector<RelId> rels;  // maintained query's relations, distinct
    // posting_pos[i] = this entry's index in by_rel_[rels[i]] —
    // lets Unregister swap-remove each posting in O(1).
    std::vector<std::size_t> posting_pos;
    std::size_t refs = 0;
    std::uint64_t batch_stamp = 0;  // last batch that touched us
    std::vector<core::PendingDelta> pending;  // batch scratch (shared mode)
  };

  void Unregister(Entry* e);
  void AddPostings(Entry* e, const Query& maintained) DYNCQ_REQUIRES(mu_);
  void RemovePostings(Entry* e) DYNCQ_REQUIRES(mu_);

  /// One folded batch command: write prologues, the storage apply, and
  /// per-subscriber queueing. A member function rather than ApplyBatch's
  /// old local lambda — a lambda body is analyzed as its own function,
  /// which would hide the held mu_ from the guarded accesses inside.
  void ApplyOneLocked(const UpdateCmd& cmd, std::uint64_t stamp,
                      std::size_t* effective) DYNCQ_REQUIRES(mu_);

  std::shared_ptr<const Schema> schema_;
  RegistryOptions opts_;
  // Guards the routing/dedup state and the counters below. NOT db_:
  // the shared database is read lock-free by the engines' read surface
  // (cursors, Count), whose safety is the external reads-vs-writes
  // synchronization of the engine contract, not a registry lock.
  // Top of the cross-layer lock hierarchy (util/lock_rank.h): the
  // batch path holds mu_ while engine write prologues take snap_mu_
  // and then the pools' retire_mu_ — the ACQUIRED_BEFORE edge onto the
  // rank token makes -Wthread-safety-beta reject the reverse nesting.
  mutable util::Mutex mu_
      DYNCQ_ACQUIRED_BEFORE(util::lock_rank::kBelowRegistry);
  Database db_;  // declared after schema_: engines rebuild from it last
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_
      DYNCQ_GUARDED_BY(mu_);
  std::vector<std::vector<Entry*>> by_rel_  // RelId -> subscribers
      DYNCQ_GUARDED_BY(mu_);
  std::size_t registered_ DYNCQ_GUARDED_BY(mu_) = 0;
  // Key source when dedup is off.
  std::uint64_t next_unique_ DYNCQ_GUARDED_BY(mu_) = 0;
  std::uint64_t batch_seq_ DYNCQ_GUARDED_BY(mu_) = 0;
  std::vector<Entry*> touched_ DYNCQ_GUARDED_BY(mu_);  // batch scratch
  BatchFolder folder_ DYNCQ_GUARDED_BY(mu_);           // batch scratch
  std::vector<std::uint32_t> kept_ DYNCQ_GUARDED_BY(mu_);
  RegistryStats stats_ DYNCQ_GUARDED_BY(mu_);
};

/// A registered standing query: QuerySession-style read surface over
/// the (possibly shared) backing engine, RAII unregistration. Move-only;
/// must be released or destroyed before the registry.
class QueryHandle {
 public:
  QueryHandle() = default;
  QueryHandle(QueryHandle&& o) noexcept : reg_(o.reg_), e_(o.e_) {
    o.reg_ = nullptr;
    o.e_ = nullptr;
  }
  QueryHandle& operator=(QueryHandle&& o) noexcept {
    if (this != &o) {
      Release();
      reg_ = o.reg_;
      e_ = o.e_;
      o.reg_ = nullptr;
      o.e_ = nullptr;
    }
    return *this;
  }
  ~QueryHandle() { Release(); }

  bool valid() const { return e_ != nullptr; }

  /// Drops this registration (refcount decrement; the backing engine
  /// dies with its last handle). Idempotent.
  void Release();

  // ---- what the registration chose ----
  const Query& query() const { return e_->query; }
  core::EngineStrategy strategy() const { return e_->strategy; }
  Capabilities capabilities() const { return e_->engine->capabilities(); }
  /// Backing engine (white-box access for benches and tests). Shared
  /// among structurally identical registrations when dedup is on.
  DynamicQueryEngine& engine() { return *e_->engine; }

  // ---- reads (QuerySession-style) ----
  Revision revision() const { return e_->engine->revision(); }
  Weight Count() { return e_->engine->Count(); }
  bool Answer() { return e_->engine->Answer(); }
  std::unique_ptr<Cursor> NewCursor() { return e_->engine->NewCursor(); }
  [[nodiscard]] Result<std::vector<Tuple>> Materialize();

  // ---- epoch pinning (DynamicQueryEngine's threading contract) ----
  [[nodiscard]] Result<std::uint64_t> PinEpoch() { return e_->engine->PinEpoch(); }
  [[nodiscard]] Status UnpinEpoch(std::uint64_t epoch) {
    return e_->engine->UnpinEpoch(epoch);
  }
  [[nodiscard]] Result<std::unique_ptr<Cursor>> NewSnapshotCursor(std::uint64_t epoch) {
    return e_->engine->NewSnapshotCursor(epoch);
  }

 private:
  friend class QueryRegistry;
  QueryHandle(QueryRegistry* reg, QueryRegistry::Entry* e)
      : reg_(reg), e_(e) {}

  QueryRegistry* reg_ = nullptr;
  QueryRegistry::Entry* e_ = nullptr;
};

}  // namespace dyncq::serve

#endif  // DYNCQ_SERVE_QUERY_REGISTRY_H_
