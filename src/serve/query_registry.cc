#include "serve/query_registry.h"

#include <algorithm>
#include <utility>

#include "baseline/delta_ivm.h"
#include "cq/analysis.h"
#include "cq/canonical.h"
#include "cq/homomorphism.h"
#include "util/check.h"

namespace dyncq::serve {

QueryRegistry::QueryRegistry(std::shared_ptr<const Schema> schema,
                             RegistryOptions opts)
    : schema_(std::move(schema)), opts_(opts), db_(*schema_) {
  DYNCQ_CHECK(schema_ != nullptr);
  by_rel_.resize(schema_->NumRelations());
}

QueryRegistry::~QueryRegistry() = default;

Result<QueryHandle> QueryRegistry::Register(const Query& q) {
  using R = Result<QueryHandle>;
  util::MutexLock lock(&mu_);
  if (q.schema_ptr().get() != schema_.get() &&
      !q.schema().IsPrefixOf(*schema_)) {
    return R::Error(
        "Register: query schema is not the registry's (nor a prefix of "
        "it): " + q.schema().ToString());
  }

  for (const Atom& a : q.atoms()) {
    if (a.rel >= by_rel_.size()) {
      return R::Error(
          "Register: relation added to the schema after this registry was "
          "constructed (the shared database is sized at construction)");
    }
  }

  const std::string key = opts_.dedup
                              ? CanonicalQueryKey(q)
                              : "u" + std::to_string(next_unique_++);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry* e = it->second.get();
    ++e->refs;
    ++registered_;
    return R(QueryHandle(this, e));
  }

  auto entry = std::make_unique<Entry>(q);
  entry->key = key;
  // The engine dichotomy (mirrors core::CreateMaintainableEngine, but
  // q-hierarchical strategies run in shared-storage mode against the
  // registry's database).
  if (IsQHierarchical(q)) {
    auto eng = core::Engine::CreateShared(q, &db_);
    DYNCQ_CHECK_MSG(eng.ok(), eng.error());
    entry->shared = eng->get();
    entry->engine = std::move(eng.value());
    entry->strategy = core::EngineStrategy::kQTree;
    AddPostings(entry.get(), q);
  } else {
    Query core_q = ComputeCore(q);
    if (IsQHierarchical(core_q)) {
      auto eng = core::Engine::CreateShared(core_q, &db_);
      DYNCQ_CHECK_MSG(eng.ok(), eng.error());
      entry->shared = eng->get();
      entry->engine = std::move(eng.value());
      entry->strategy = core::EngineStrategy::kQTreeOnCore;
      // Route by the CORE's relations: the core is equivalent to q on
      // every database, so deltas on relations only the redundant atoms
      // mention cannot change the maintained result.
      AddPostings(entry.get(), core_q);
    } else {
      // Conditionally hard query: delta-IVM fallback with private
      // storage, synced by replaying the shared database's current
      // contents of the query's relations.
      auto ivm = std::make_unique<baseline::DeltaIvmEngine>(q);
      AddPostings(entry.get(), q);
      if (db_.NumTuples() > 0) {
        UpdateStream replay;
        for (RelId r : entry->rels) {
          for (const Tuple& t : db_.relation(r)) {
            replay.push_back(UpdateCmd::Insert(r, t));
          }
        }
        ivm->ApplyAll(replay);
      }
      entry->engine = std::move(ivm);
      entry->strategy = core::EngineStrategy::kDeltaIvm;
    }
  }

  Entry* e = entry.get();
  e->refs = 1;
  ++registered_;
  entries_.emplace(key, std::move(entry));
  return R(QueryHandle(this, e));
}

void QueryRegistry::AddPostings(Entry* e, const Query& maintained) {
  for (const Atom& a : maintained.atoms()) {
    if (std::find(e->rels.begin(), e->rels.end(), a.rel) != e->rels.end()) {
      continue;
    }
    e->rels.push_back(a.rel);
    DYNCQ_CHECK(a.rel < by_rel_.size());
    e->posting_pos.push_back(by_rel_[a.rel].size());
    by_rel_[a.rel].push_back(e);
  }
}

void QueryRegistry::RemovePostings(Entry* e) {
  for (std::size_t i = 0; i < e->rels.size(); ++i) {
    const RelId rel = e->rels[i];
    const std::size_t pos = e->posting_pos[i];
    auto& subs = by_rel_[rel];
    DYNCQ_DCHECK(pos < subs.size() && subs[pos] == e);
    if (pos + 1 != subs.size()) {
      Entry* moved = subs.back();
      subs[pos] = moved;
      // Tell the moved entry where it now lives for this relation.
      for (std::size_t j = 0; j < moved->rels.size(); ++j) {
        if (moved->rels[j] == rel) {
          moved->posting_pos[j] = pos;
          break;
        }
      }
    }
    subs.pop_back();
  }
  e->rels.clear();
  e->posting_pos.clear();
}

void QueryRegistry::Unregister(Entry* e) {
  util::MutexLock lock(&mu_);
  DYNCQ_CHECK(e->refs > 0);
  --e->refs;
  --registered_;
  if (e->refs > 0) return;
  RemovePostings(e);
  entries_.erase(e->key);  // frees the entry and its engine
}

bool QueryRegistry::ApplyDelta(const UpdateCmd& cmd) {
  util::MutexLock lock(&mu_);
  DYNCQ_CHECK_MSG(cmd.rel < by_rel_.size(),
                  "ApplyDelta: relation id outside the registry schema");
  auto& subs = by_rel_[cmd.rel];
  // Pinned-snapshot forks must see the pre-update database, so every
  // affected shared engine runs its write prologue before storage
  // mutates. Unpinned engines pay one relaxed atomic load here.
  for (Entry* e : subs) {
    if (e->shared != nullptr) e->shared->PrepareSharedWrite();
  }
  if (!db_.Apply(cmd)) return false;  // no-op: nobody is affected
  ++stats_.deltas_applied;
  const core::PendingDelta d{cmd.rel, &cmd.tuple,
                             cmd.kind == UpdateKind::kInsert};
  for (Entry* e : subs) {
    ++stats_.notifications;
    if (e->shared != nullptr) {
      e->shared->ApplySharedDelta(d);
    } else {
      // Private-storage fallback: its database is the projection of the
      // shared one onto the query's relations (it sees exactly the
      // per-relation command subsequence), so this Apply is effective
      // exactly when the shared one was.
      e->engine->Apply(cmd);
    }
  }
  return true;
}

void QueryRegistry::ApplyOneLocked(const UpdateCmd& cmd, std::uint64_t stamp,
                                   std::size_t* effective) {
  DYNCQ_CHECK_MSG(cmd.rel < by_rel_.size(),
                  "ApplyBatch: relation id outside the registry schema");
  auto& subs = by_rel_[cmd.rel];
  // Write prologue before the FIRST mutation of any relation an
  // engine subscribes to: at that point the database still matches
  // the engine's pre-batch structure (earlier commands in this batch
  // touched only relations it does not read), so a pinned fork
  // rebuilds the correct version. ForkIfPinned self-disarms, making
  // repeats cheap, but the stamp also bounds bookkeeping to once per
  // engine per batch.
  for (Entry* e : subs) {
    if (e->batch_stamp != stamp) {
      e->batch_stamp = stamp;
      e->pending.clear();
      touched_.push_back(e);
      if (e->shared != nullptr) e->shared->PrepareSharedWrite();
    }
  }
  if (!db_.Apply(cmd)) return;  // no-op, absorbed
  ++*effective;
  ++stats_.deltas_applied;
  for (Entry* e : subs) {
    ++stats_.notifications;
    if (e->shared != nullptr) {
      // Queued for the engine's batch pipeline; borrows the caller's
      // tuple storage, which outlives this call.
      e->pending.push_back(core::PendingDelta{
          cmd.rel, &cmd.tuple, cmd.kind == UpdateKind::kInsert});
    } else {
      e->engine->Apply(cmd);  // fallback: ordered per-command replay
    }
  }
}

std::size_t QueryRegistry::ApplyBatch(std::span<const UpdateCmd> cmds) {
  util::MutexLock lock(&mu_);
  const std::uint64_t stamp = ++batch_seq_;
  touched_.clear();
  std::size_t effective = 0;

  // Same in-batch fold as the engines (storage/update.h): superseded
  // commands never reach storage or any subscriber, and the effective
  // count stays comparable with the single-session pipelines.
  if (folder_.Fold(cmds, &kept_)) {
    for (std::uint32_t i : kept_) ApplyOneLocked(cmds[i], stamp, &effective);
  } else {
    for (const UpdateCmd& cmd : cmds) ApplyOneLocked(cmd, stamp, &effective);
  }

  for (Entry* e : touched_) {
    if (e->shared != nullptr && !e->pending.empty()) {
      e->shared->ApplySharedDeltas(e->pending.data(), e->pending.size());
    }
    e->pending.clear();  // drop dangling borrows of the caller's span
  }
  return effective;
}

std::size_t QueryRegistry::RetiredBlocks() const {
  util::MutexLock lock(&mu_);
  std::size_t n = 0;
  for (const auto& [key, e] : entries_) {
    if (e->shared != nullptr) n += e->shared->RetiredBlocks();
  }
  return n;
}

void QueryHandle::Release() {
  if (e_ == nullptr) return;
  reg_->Unregister(e_);
  reg_ = nullptr;
  e_ = nullptr;
}

Result<std::vector<Tuple>> QueryHandle::Materialize() {
  using R = Result<std::vector<Tuple>>;
  std::vector<Tuple> out;
  out.reserve(BoundedReserveFromCount(Count()));
  std::unique_ptr<Cursor> cur = NewCursor();
  Tuple t;
  CursorStatus s;
  while ((s = cur->Next(&t)) == CursorStatus::kOk) out.push_back(t);
  if (s == CursorStatus::kInvalidated) {
    return R::Error("Materialize: result changed mid-drain");
  }
  return R(std::move(out));
}

}  // namespace dyncq::serve
